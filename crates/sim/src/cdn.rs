//! Continental-scale CDN simulation — Figures 11, 12, 13 and 14.
//!
//! The paper simulates a CDN's edge data centers across the US and Europe
//! for a full year: applications arrive at edge sites, and each policy
//! places them on servers within the application's latency limit.  Carbon is
//! accounted from the hourly intensity of the hosting zone.
//!
//! # The epoch re-placement engine
//!
//! The year is partitioned by an [`EpochSchedule`] (monthly, weekly or
//! daily).  At each epoch boundary the simulator re-solves placement against
//! the **forecast** mean intensity Ī over the epoch, served by a
//! [`CarbonIntensityService`] configured with the scenario's
//! [`ForecasterKind`] — this is the *decision* intensity of Section 4.2.
//! Realized carbon is then *accounted* from the actual hourly trace over the
//! same epoch (the assignment's energy re-priced at the epoch's true mean
//! intensity), so forecast error shows up as the gap between
//! [`EpochOutcome::decision_carbon_g`] and [`EpochOutcome::carbon_g`].  The
//! legacy monthly simulation is exactly the `Monthly` + `Oracle`
//! configuration (the default), which reproduces its results bit for bit.
//!
//! # Stateful re-placement
//!
//! The committed assignment is threaded from each epoch into the next as a
//! [`carbonedge_core::PlacementState`], so re-solves are *delta* placements:
//! the placer weighs the forecast carbon savings of every move against the
//! per-application migration cost of the configured
//! [`MigrationCostLevel`] (model-image transfer + downtime, in grams).
//! Moves are counted per epoch with [`carbonedge_core::AssignmentDiff`],
//! their migration carbon is charged into both the decision and the realized
//! totals, and [`MigrationCostLevel::Free`] reproduces the stateless
//! engine's decisions bit for bit while still reporting churn.

use crate::metrics::{PolicyOutcome, Savings};
use crate::serving::{ServingEngine, ServingMetrics, ServingMode};
use carbonedge_core::{
    IncrementalPlacer, MigrationCostLevel, PairLatencyCache, PlacementPolicy, PlacementProblem,
    PlacementState, ServerSnapshot,
};
use carbonedge_datasets::zones::ZoneArea;
use carbonedge_datasets::{EdgeSiteCatalog, ZoneCatalog};
use carbonedge_grid::{CarbonIntensityService, CarbonTrace, EpochSchedule, ForecasterKind};
use carbonedge_net::LatencyModel;
use carbonedge_workload::{
    AppId, Application, ArrivalProcess, DeviceKind, ModelKind, RequestStream, WorkloadProfile,
};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Demand/capacity scenarios of Figure 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CdnScenario {
    /// Uniform demand and uniform capacity across sites ("Homo").
    Homogeneous,
    /// Demand proportional to metro population, capacity uniform ("Demand").
    PopulationDemand,
    /// Capacity proportional to metro population, demand uniform ("Capacity").
    PopulationCapacity,
}

impl CdnScenario {
    /// Display name used in Figure 14.
    pub fn name(&self) -> &'static str {
        match self {
            CdnScenario::Homogeneous => "Homo",
            CdnScenario::PopulationDemand => "Demand",
            CdnScenario::PopulationCapacity => "Capacity",
        }
    }
}

/// Configuration of a CDN-scale simulation.
#[derive(Debug, Clone)]
pub struct CdnConfig {
    /// Which continent to simulate (US or Europe).
    pub area: ZoneArea,
    /// Round-trip latency limit for every application (ms); 20 ms ≈ 500 km.
    pub latency_limit_ms: f64,
    /// Applications arriving per site per month.
    pub apps_per_site: usize,
    /// Number of servers per edge site in the homogeneous scenario.
    pub servers_per_site: usize,
    /// Device installed in the CDN servers.
    pub device: DeviceKind,
    /// Model served by the arriving applications.
    pub model: ModelKind,
    /// Per-application request rate (requests/second).
    pub request_rate_rps: f64,
    /// Demand/capacity scenario.
    pub scenario: CdnScenario,
    /// Optional cap on the number of edge sites (used to keep unit tests
    /// fast); `None` simulates the full catalog.
    pub site_limit: Option<usize>,
    /// Trace seed.
    pub seed: u64,
    /// How often the placement is re-solved over the year.
    pub epoch: EpochSchedule,
    /// Forecaster serving the decision intensity Ī at each epoch boundary.
    pub forecaster: ForecasterKind,
    /// Per-application migration cost charged when a re-solve moves an
    /// application off its incumbent server.
    pub migration: MigrationCostLevel,
    /// How demand is served: hour-aggregated (the legacy model) or through
    /// the batched event-level loop (with or without the online
    /// re-placement trigger).
    pub serving: ServingMode,
    /// Hour-of-day modulation of the event-level request streams (its
    /// `mean` field is ignored; each stream scales by the app's rate).
    pub arrivals: ArrivalProcess,
    /// Relative per-site demand drift that triggers a mid-epoch re-solve
    /// under [`ServingMode::OnlineReplace`].
    pub drift_threshold: f64,
    /// Hours a fresh decision is exempt from the drift trigger.
    pub drift_cooldown_hours: usize,
}

impl CdnConfig {
    /// The paper's default CDN setup for an area: 20 ms RTT limit, ResNet50
    /// on NVIDIA A2 servers, homogeneous demand and capacity.
    pub fn new(area: ZoneArea) -> Self {
        Self {
            area,
            latency_limit_ms: 20.0,
            apps_per_site: 1,
            servers_per_site: 4,
            device: DeviceKind::A2,
            model: ModelKind::ResNet50,
            request_rate_rps: 15.0,
            scenario: CdnScenario::Homogeneous,
            site_limit: None,
            seed: 42,
            epoch: EpochSchedule::Monthly,
            forecaster: ForecasterKind::Oracle,
            migration: MigrationCostLevel::Free,
            serving: ServingMode::Aggregate,
            arrivals: ArrivalProcess::diurnal_bursty(),
            drift_threshold: 0.5,
            drift_cooldown_hours: 24,
        }
    }

    /// Sets the latency limit (Figure 12 sweeps 5–30 ms).
    pub fn with_latency_limit(mut self, ms: f64) -> Self {
        self.latency_limit_ms = ms;
        self
    }

    /// Sets the scenario (Figure 14).
    pub fn with_scenario(mut self, scenario: CdnScenario) -> Self {
        self.scenario = scenario;
        self
    }

    /// Restricts the simulation to the first `n` sites of the area.
    pub fn with_site_limit(mut self, n: usize) -> Self {
        self.site_limit = Some(n);
        self
    }

    /// Sets the re-placement schedule.
    pub fn with_epoch(mut self, epoch: EpochSchedule) -> Self {
        self.epoch = epoch;
        self
    }

    /// Sets the forecaster serving the decision intensity.
    pub fn with_forecaster(mut self, forecaster: ForecasterKind) -> Self {
        self.forecaster = forecaster;
        self
    }

    /// Sets the migration-cost calibration charged per move.
    pub fn with_migration(mut self, migration: MigrationCostLevel) -> Self {
        self.migration = migration;
        self
    }

    /// Sets the serving mode (aggregate, event-level, or event-level with
    /// the online re-placement trigger).
    pub fn with_serving(mut self, serving: ServingMode) -> Self {
        self.serving = serving;
        self
    }

    /// Sets the arrival modulation of the event-level request streams.
    pub fn with_arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Sets the online re-placement trigger: relative demand drift and the
    /// per-decision cooldown before the trigger re-arms.
    pub fn with_drift(mut self, threshold: f64, cooldown_hours: usize) -> Self {
        self.drift_threshold = threshold;
        self.drift_cooldown_hours = cooldown_hours;
        self
    }
}

/// Per-month outcome of one policy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MonthlyOutcome {
    /// Total carbon for the month, grams.
    pub carbon_g: f64,
    /// Total energy for the month, joules.
    pub energy_j: f64,
    /// Mean round-trip latency of placed applications, ms.
    pub mean_latency_ms: f64,
}

/// Outcome of one placement epoch, separating the carbon the placer
/// *decided* against (forecast intensities) from the carbon it *realized*
/// (the actual trace over the epoch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochOutcome {
    /// Position in the schedule.
    pub index: usize,
    /// First hour of the epoch.
    pub start: carbonedge_grid::HourOfYear,
    /// Hours the epoch spans.
    pub hours: usize,
    /// Realized carbon: the decision's energy re-priced at the epoch's
    /// actual mean intensity per zone, grams.
    pub carbon_g: f64,
    /// Carbon the placer expected under the forecast intensities, grams.
    pub decision_carbon_g: f64,
    /// Total energy over the epoch, joules (independent of intensity).
    pub energy_j: f64,
    /// Mean round-trip latency of placed applications, ms.
    pub mean_latency_ms: f64,
    /// Applications placed in this epoch.
    pub placed_apps: usize,
    /// Applications moved off their previous epoch's server (0 in the
    /// first epoch — there is no incumbent yet).
    pub moves: usize,
    /// Migration carbon charged for those moves, grams; included in both
    /// `carbon_g` and `decision_carbon_g`.
    pub migration_carbon_g: f64,
}

/// Result of running one policy over the full year.
#[derive(Debug, Clone)]
pub struct CdnResult {
    /// Policy name.
    pub policy: String,
    /// Aggregated *realized* outcome over the year.
    pub outcome: PolicyOutcome,
    /// Total carbon the placer expected under its forecasts, grams; the gap
    /// to `outcome.carbon_g` is the aggregate forecast pricing error.
    pub decision_carbon_g: f64,
    /// Per-month outcomes (12 entries).  Under non-monthly schedules each
    /// epoch is attributed to the calendar month containing its first hour.
    pub monthly: Vec<MonthlyOutcome>,
    /// Per-epoch outcomes in schedule order.
    pub epochs: Vec<EpochOutcome>,
    /// Per-site application counts per month (`[month][site]`, Figure 13d);
    /// epochs are attributed to the month of their first hour.
    pub placements_per_site: Vec<Vec<usize>>,
    /// The realized mean carbon intensity of the zone each placed
    /// application landed in (one sample per app-epoch, Figure 11c).
    pub assigned_intensity: Vec<f64>,
    /// Site names in `placements_per_site` column order.
    pub site_names: Vec<String>,
    /// Simplex pivots the placer's exact path spent over the run (0 for
    /// heuristic-only runs) — the epoch-to-epoch warm-restart work.
    pub solver_pivots: usize,
    /// Number of epochs decided by the exact MILP path.
    pub exact_decisions: usize,
    /// Applications moved between servers across all epoch boundaries (the
    /// run's churn).
    pub moves: usize,
    /// Total migration carbon charged for those moves, grams; included in
    /// `outcome.carbon_g` and `decision_carbon_g`.
    pub migration_carbon_g: f64,
    /// Event-level serving metrics (`None` under
    /// [`ServingMode::Aggregate`], which leaves the legacy result
    /// untouched).
    pub serving: Option<ServingMetrics>,
}

impl CdnResult {
    /// Applications assigned to a named site per month.
    pub fn monthly_placements_for(&self, site_name: &str) -> Option<Vec<usize>> {
        let idx = self.site_names.iter().position(|n| n == site_name)?;
        Some(self.placements_per_site.iter().map(|m| m[idx]).collect())
    }
}

/// Immutable inputs shared by every CDN simulation: the worldwide zone
/// catalog, the Akamai-like edge-site catalog derived from it, and a cache of
/// generated carbon traces keyed by seed.
///
/// Building traces is the expensive part of `CdnSimulator::new` (a year of
/// hourly values for every zone), and a scenario sweep instantiates dozens to
/// thousands of simulators that differ only in policy, latency limit or
/// demand scenario.  Sharing one `CdnShared` across those cells makes
/// simulator construction an `Arc` clone plus a site-list copy, and is safe
/// to use concurrently from the sweep executor's worker threads.
pub struct CdnShared {
    catalog: Arc<ZoneCatalog>,
    site_catalog: EdgeSiteCatalog,
    /// Per-seed trace slots.  The map mutex is only held for slot lookup;
    /// generation happens inside the seed's own `OnceLock`, so concurrent
    /// requests for *different* seeds generate in parallel while concurrent
    /// requests for the *same* seed generate exactly once.
    traces_by_seed: Mutex<HashMap<u64, TraceSlot>>,
    /// Per-scenario preparation slots, same lookup/init discipline as
    /// `traces_by_seed`: the mutex is held only to find the slot, the
    /// (expensive) prep build happens inside the scenario's own `OnceLock`.
    preps: Mutex<HashMap<PrepKey, PrepSlot>>,
}

/// A year of traces for every zone, shared across simulators.
type SharedTraces = Arc<Vec<CarbonTrace>>;
/// A lazily initialized per-seed cache slot.
type TraceSlot = Arc<OnceLock<SharedTraces>>;
/// A lazily initialized per-scenario prep slot.
type PrepSlot = Arc<OnceLock<Arc<ScenarioPrep>>>;

/// The configuration fields a [`ScenarioPrep`] depends on: everything that
/// shapes the deployment, the traces, the epoch schedule, or the forecast —
/// but **not** the policy, migration costs, serving mode, arrival
/// modulation or drift trigger, which only steer how the shared inputs are
/// consumed.  Sweep cells differing in those consumer axes therefore share
/// one prep.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PrepKey {
    area: ZoneArea,
    scenario: CdnScenario,
    latency_bits: u64,
    rate_bits: u64,
    apps_per_site: usize,
    servers_per_site: usize,
    device: DeviceKind,
    model: ModelKind,
    site_limit: Option<usize>,
    seed: u64,
    epoch: EpochSchedule,
    forecaster: ForecasterKind,
}

impl PrepKey {
    fn of(config: &CdnConfig) -> Self {
        Self {
            area: config.area,
            scenario: config.scenario,
            latency_bits: config.latency_limit_ms.to_bits(),
            rate_bits: config.request_rate_rps.to_bits(),
            apps_per_site: config.apps_per_site,
            servers_per_site: config.servers_per_site,
            device: config.device,
            model: config.model,
            site_limit: config.site_limit,
            seed: config.seed,
            epoch: config.epoch,
            forecaster: config.forecaster,
        }
    }
}

/// Scenario-level preparation computed once per `PrepKey` and consumed by
/// every policy/migration/serving variant of the scenario: the per-epoch
/// per-site decision (forecast) and accounting (actual) mean intensities,
/// the mean metro population the demand/capacity scenarios normalize by,
/// and the site-to-site round-trip latency matrix over the epoch-invariant
/// deployment shape.
///
/// Every cached value is produced by exactly the statement sequence the
/// cold path executes (epochs in schedule order, sites in catalog order,
/// one intensity scan per distinct zone per window), so a prepped run is
/// bit-identical to a cold run — the invariant pinned by the sim crate's
/// shared-vs-standalone test and the sweep crate's `sweep_delta`
/// differential.
pub struct ScenarioPrep {
    mean_population: f64,
    /// `[epoch.index][site]` → (decision mean, actual mean) intensity.
    epoch_site_means: Vec<Vec<(f64, f64)>>,
    /// Pair round-trip latencies with app/server classes = site indices.
    latency: Arc<PairLatencyCache>,
}

impl CdnShared {
    /// Builds the shared catalogs (traces are generated lazily per seed).
    pub fn new() -> Self {
        let catalog = Arc::new(ZoneCatalog::worldwide());
        let site_catalog = EdgeSiteCatalog::akamai_like(&catalog);
        Self {
            catalog,
            site_catalog,
            traces_by_seed: Mutex::new(HashMap::new()),
            preps: Mutex::new(HashMap::new()),
        }
    }

    /// The shared worldwide zone catalog.
    pub fn catalog(&self) -> &Arc<ZoneCatalog> {
        &self.catalog
    }

    /// The traces for a seed, generating and caching them on first use.
    ///
    /// Both caches are monotone insert-only maps of lazily initialized
    /// slots, so a lock poisoned by a panicking sweep worker is still
    /// structurally sound — recover the guard instead of cascading the
    /// panic into every other worker.
    pub fn traces(&self, seed: u64) -> Arc<Vec<CarbonTrace>> {
        let slot = {
            let mut cache = self
                .traces_by_seed
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            Arc::clone(cache.entry(seed).or_default())
        };
        Arc::clone(slot.get_or_init(|| Arc::new(self.catalog.generate_traces(seed))))
    }

    /// Number of distinct seeds whose traces are cached (generated).
    pub fn cached_seed_count(&self) -> usize {
        self.traces_by_seed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// Number of distinct scenarios whose preparation is cached (built).
    pub fn cached_prep_count(&self) -> usize {
        self.preps
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// Builds a simulator for a configuration on the shared catalogs, with
    /// the scenario preparation attached: epoch intensity means, demand
    /// aggregates and the pair-latency matrix are computed once per
    /// `PrepKey` and reused by every policy/migration/serving variant.
    pub fn simulator(&self, config: CdnConfig) -> CdnSimulator {
        let mut sim = self.cold_simulator(config);
        let slot = {
            let mut cache = self.preps.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(cache.entry(PrepKey::of(&sim.config)).or_default())
        };
        sim.prep = Some(Arc::clone(slot.get_or_init(|| Arc::new(sim.build_prep()))));
        sim
    }

    /// Builds a simulator **without** the scenario preparation: every run
    /// re-derives its epoch inputs from scratch.  This is the differential
    /// oracle the prepped path is tested against (`tests/sweep_delta.rs`
    /// and the shared-vs-standalone sim test); it is also what
    /// [`CdnSimulator::new`] returns.
    pub fn cold_simulator(&self, config: CdnConfig) -> CdnSimulator {
        let traces = self.traces(config.seed);
        let mut sites: Vec<_> = self
            .site_catalog
            .in_area(config.area)
            .iter()
            .map(|s| (s.name.clone(), s.location, s.zone, s.population_m))
            .collect();
        if let Some(limit) = config.site_limit {
            sites.truncate(limit);
        }
        CdnSimulator {
            config,
            catalog: Arc::clone(&self.catalog),
            traces,
            sites,
            latency_model: LatencyModel::deterministic(),
            prep: None,
        }
    }
}

impl Default for CdnShared {
    fn default() -> Self {
        Self::new()
    }
}

/// The CDN simulator: the catalog, traces and site list for one area.
pub struct CdnSimulator {
    config: CdnConfig,
    catalog: Arc<ZoneCatalog>,
    traces: Arc<Vec<CarbonTrace>>,
    /// (site name, location, zone, population) restricted to the area.
    sites: Vec<(
        String,
        carbonedge_geo::Coordinates,
        carbonedge_grid::ZoneId,
        f64,
    )>,
    latency_model: LatencyModel,
    /// Scenario preparation attached by [`CdnShared::simulator`]; `None`
    /// for standalone/cold simulators, which re-derive every epoch's
    /// inputs from scratch.
    prep: Option<Arc<ScenarioPrep>>,
}

impl CdnSimulator {
    /// Builds a standalone simulator for a configuration, running on the
    /// cold (from-scratch) path.  Sweeps running many configurations should
    /// build one [`CdnShared`] and call [`CdnShared::simulator`] instead,
    /// which reuses catalogs, traces and the scenario preparation.
    pub fn new(config: CdnConfig) -> Self {
        CdnShared::new().cold_simulator(config)
    }

    /// Number of simulated edge sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The zone catalog backing the simulation.
    pub fn catalog(&self) -> &ZoneCatalog {
        &self.catalog
    }

    /// Monthly mean carbon intensity of a named zone (Figure 13c).
    pub fn monthly_intensity_of(&self, zone_name: &str) -> Option<Vec<f64>> {
        let id = self.catalog.id_of(zone_name)?;
        Some(
            (0..12)
                .map(|m| self.traces[id.index()].monthly_mean(m))
                .collect(),
        )
    }

    fn capacity_multiplier(&self, population: f64, mean_population: f64) -> usize {
        match self.config.scenario {
            CdnScenario::PopulationCapacity => ((population / mean_population)
                * self.config.servers_per_site as f64)
                .round()
                // lint:allow(lossy-cast): rounded and clamped to >= 1.0 above, so the cast is exact
                .max(1.0) as usize,
            _ => self.config.servers_per_site,
        }
    }

    fn demand_for_site(&self, population: f64, mean_population: f64) -> usize {
        match self.config.scenario {
            CdnScenario::PopulationDemand => ((population / mean_population)
                * self.config.apps_per_site as f64)
                .round()
                // lint:allow(lossy-cast): rounded and clamped to >= 0.0 above, so the cast is exact
                .max(0.0) as usize,
            _ => self.config.apps_per_site,
        }
    }

    /// Runs the year-long simulation for one policy with the default
    /// heuristic placer.
    pub fn run(&self, policy: PlacementPolicy) -> CdnResult {
        self.run_with(&IncrementalPlacer::new(policy).heuristic_only())
    }

    /// Runs the year-long simulation with a caller-provided placer, letting
    /// sweeps share one solver configuration across cells (see
    /// [`IncrementalPlacer::with_policy`]).
    ///
    /// At each epoch boundary of the configured [`EpochSchedule`] the
    /// placement is re-solved against the **forecast** mean intensity over
    /// the epoch ([`CarbonIntensityService::forecast_mean_over`] with the
    /// configured [`ForecasterKind`]); realized carbon is then accounted by
    /// re-pricing the committed assignment at the epoch's **actual** mean
    /// intensity from the hourly trace, plus the migration carbon of any
    /// moves off the previous epoch's committed assignment (which is
    /// threaded into each re-solve as a
    /// [`PlacementState`]).  Successive
    /// epochs build structurally identical placement problems — migration
    /// terms are folded into the costs, never into the constraint matrix —
    /// so a placer on the exact path warm-restarts each re-solve from the
    /// previous optimal basis (cost-only changes restart primal phase-2);
    /// the per-run pivot count is surfaced as [`CdnResult::solver_pivots`].
    pub fn run_with(&self, placer: &IncrementalPlacer) -> CdnResult {
        match self.config.serving {
            ServingMode::OnlineReplace => self.run_online(placer),
            _ => self.run_epochal(placer),
        }
    }

    /// Builds the placement inputs for one decision window: server
    /// snapshots priced at the forecast mean intensity over the window, the
    /// server→site map, the per-server *actual* window-mean intensity kept
    /// aside for accounting, and the applications demanding placement.
    /// Shared by the epoch-boundary path and the online re-placement path;
    /// the statement sequence is identical to the legacy inline loop, so
    /// the aggregate path stays bit-exact.
    #[allow(clippy::type_complexity)]
    fn build_epoch_inputs(
        &self,
        window_start: carbonedge_grid::HourOfYear,
        window_hours: usize,
        service: &CarbonIntensityService,
        mean_population: f64,
    ) -> (Vec<ServerSnapshot>, Vec<usize>, Vec<f64>, Vec<Application>) {
        let site_means = self.site_means_for_window(window_start, window_hours, service);
        self.assemble_epoch_inputs(mean_population, &site_means)
    }

    /// The per-site (decision, actual) mean intensities for one window:
    /// decision = the *forecast* mean for the site's zone over the window
    /// (the decision intensity Ī of Section 4.2), actual = the trace's true
    /// window mean, kept aside for accounting.  Both depend only on
    /// (zone, window); sites sharing a zone reuse them instead of
    /// re-scanning the trace window per site.  The prep cache stores these
    /// vectors per epoch, produced by this exact routine, so prepped and
    /// cold runs see identical bits.
    fn site_means_for_window(
        &self,
        window_start: carbonedge_grid::HourOfYear,
        window_hours: usize,
        service: &CarbonIntensityService,
    ) -> Vec<(f64, f64)> {
        let mut zone_means: HashMap<carbonedge_grid::ZoneId, (f64, f64)> = HashMap::new();
        self.sites
            .iter()
            .map(|(_, _, zone, _)| {
                *zone_means.entry(*zone).or_insert_with(|| {
                    (
                        service.forecast_mean_over(*zone, window_start, window_hours),
                        self.traces[zone.index()]
                            .window_mean(window_start, window_hours)
                            .max(0.0),
                    )
                })
            })
            .collect()
    }

    /// Materializes the placement inputs from per-site window means:
    /// server snapshots (capacity per site according to the scenario,
    /// priced at the decision mean), the server→site map, the per-server
    /// actual mean for accounting, and the arriving applications (demand
    /// per site according to the scenario).
    #[allow(clippy::type_complexity)]
    fn assemble_epoch_inputs(
        &self,
        mean_population: f64,
        site_means: &[(f64, f64)],
    ) -> (Vec<ServerSnapshot>, Vec<usize>, Vec<f64>, Vec<Application>) {
        let mut servers = Vec::new();
        let mut server_site = Vec::new();
        let mut actual_by_server = Vec::new();
        for (site_idx, (_, loc, zone, pop)) in self.sites.iter().enumerate() {
            let count = self.capacity_multiplier(*pop, mean_population);
            let (decided, actual) = site_means[site_idx];
            for _ in 0..count {
                servers.push(
                    ServerSnapshot::new(servers.len(), site_idx, *zone, self.config.device, *loc)
                        .with_carbon_intensity(decided),
                );
                server_site.push(site_idx);
                actual_by_server.push(actual);
            }
        }
        let mut apps = Vec::new();
        for (_, loc, _, pop) in &self.sites {
            let count = self.demand_for_site(*pop, mean_population);
            for _ in 0..count {
                apps.push(Application::new(
                    AppId(apps.len()),
                    self.config.model,
                    self.config.request_rate_rps,
                    self.config.latency_limit_ms,
                    *loc,
                    0,
                ));
            }
        }
        (servers, server_site, actual_by_server, apps)
    }

    /// Mean metro population across the simulated sites — the normalizer of
    /// the population-proportional demand/capacity scenarios.
    fn mean_population(&self) -> f64 {
        self.sites.iter().map(|(_, _, _, p)| *p).sum::<f64>() / self.sites.len().max(1) as f64
    }

    /// Builds the scenario preparation for this simulator's configuration:
    /// replays the cold path's exact intensity-scan sequence over every
    /// epoch of the schedule, and precomputes the site-to-site round-trip
    /// latency matrix over the epoch-invariant deployment shape (app and
    /// server location classes are site indices).
    fn build_prep(&self) -> ScenarioPrep {
        let mean_population = self.mean_population();
        let service = CarbonIntensityService::shared(Arc::clone(&self.traces))
            .with_forecaster(self.config.forecaster.build(), 1);
        let epoch_site_means = self
            .config
            .epoch
            .epochs()
            .into_iter()
            .map(|epoch| self.site_means_for_window(epoch.start, epoch.hours, &service))
            .collect();

        let sites = self.sites.len();
        let mut rtt_ms = vec![0.0f64; sites * sites];
        for (i, (_, a, _, _)) in self.sites.iter().enumerate() {
            for (j, (_, b, _, _)) in self.sites.iter().enumerate() {
                // The same pure call `PlacementProblem::latency_ms` would
                // make: identical coordinates, identical bits.
                rtt_ms[i * sites + j] = self.latency_model.round_trip_ms(*a, *b);
            }
        }
        let mut server_class = Vec::new();
        let mut app_class = Vec::new();
        for (site_idx, (_, _, _, pop)) in self.sites.iter().enumerate() {
            for _ in 0..self.capacity_multiplier(*pop, mean_population) {
                server_class.push(site_idx as u32);
            }
        }
        for (site_idx, (_, _, _, pop)) in self.sites.iter().enumerate() {
            for _ in 0..self.demand_for_site(*pop, mean_population) {
                app_class.push(site_idx as u32);
            }
        }
        ScenarioPrep {
            mean_population,
            epoch_site_means,
            latency: Arc::new(PairLatencyCache::new(
                app_class,
                server_class,
                rtt_ms,
                sites,
            )),
        }
    }

    /// Builds the event-level serving engine for this deployment: one
    /// request stream per application (seeded from its (app, origin-site)
    /// pair and the trace seed), per-site capacities matching the scenario's
    /// server counts, and the profiled service time of the configured
    /// (model, device) pair.
    fn build_serving_engine(&self) -> ServingEngine {
        let mean_population =
            self.sites.iter().map(|(_, _, _, p)| *p).sum::<f64>() / self.sites.len().max(1) as f64;
        let mut streams = Vec::new();
        for (site_idx, (_, _, _, pop)) in self.sites.iter().enumerate() {
            let count = self.demand_for_site(*pop, mean_population);
            for _ in 0..count {
                streams.push(RequestStream::new(
                    streams.len(),
                    site_idx,
                    self.config.request_rate_rps,
                    self.config.arrivals,
                    self.config.seed,
                ));
            }
        }
        let locations: Vec<_> = self.sites.iter().map(|(_, loc, _, _)| *loc).collect();
        let servers_per_site: Vec<usize> = self
            .sites
            .iter()
            .map(|(_, _, _, pop)| self.capacity_multiplier(*pop, mean_population))
            .collect();
        let profile = WorkloadProfile::lookup(self.config.model, self.config.device)
            .expect("CDN simulations use profiled (model, device) pairs");
        ServingEngine::new(
            streams,
            &locations,
            &servers_per_site,
            profile.max_throughput_rps(),
            profile.processing_time_ms,
            &self.latency_model,
        )
    }

    /// The epoch-boundary engine: one placement decision per epoch of the
    /// configured schedule.  [`ServingMode::Aggregate`] runs exactly the
    /// legacy loop; [`ServingMode::EventLevel`] additionally streams every
    /// epoch through the batched serving loop (the placement and carbon
    /// numbers are identical — serving metrics ride on top).
    fn run_epochal(&self, placer: &IncrementalPlacer) -> CdnResult {
        let mean_population = match &self.prep {
            Some(prep) => prep.mean_population,
            None => self.mean_population(),
        };
        let service = CarbonIntensityService::shared(Arc::clone(&self.traces))
            .with_forecaster(self.config.forecaster.build(), 1);
        let per_app_migration = self
            .config
            .migration
            .cost_for(self.config.model, self.config.device);
        let mut serving_engine = self
            .config
            .serving
            .is_event_level()
            .then(|| self.build_serving_engine());

        let mut outcome = PolicyOutcome::default();
        let mut decision_carbon_total = 0.0f64;
        let mut placements_per_site = vec![vec![0usize; self.sites.len()]; 12];
        let mut assigned_intensity = Vec::new();
        let mut epochs = Vec::with_capacity(self.config.epoch.epoch_count());
        let pivots_before = placer.milp_solver.accumulated_pivots();
        let mut exact_decisions = 0usize;
        let mut moves_total = 0usize;
        let mut migration_total = 0.0f64;
        // The committed assignment of the previous epoch — the incumbent the
        // next delta re-solve is charged against.
        let mut committed: Option<Vec<Option<usize>>> = None;

        for epoch in self.config.epoch.epochs() {
            let month = epoch.start.month();
            // A prepped simulator reads the epoch's per-site means straight
            // from the scenario cache; the cold path re-derives them from
            // the forecaster and trace (the differential oracle).
            let (servers, server_site, actual_by_server, apps) = match self
                .prep
                .as_ref()
                .and_then(|p| p.epoch_site_means.get(epoch.index))
            {
                Some(site_means) => self.assemble_epoch_inputs(mean_population, site_means),
                None => {
                    self.build_epoch_inputs(epoch.start, epoch.hours, &service, mean_population)
                }
            };
            if apps.is_empty() || servers.is_empty() {
                epochs.push(EpochOutcome {
                    index: epoch.index,
                    start: epoch.start,
                    hours: epoch.hours,
                    carbon_g: 0.0,
                    decision_carbon_g: 0.0,
                    energy_j: 0.0,
                    mean_latency_ms: 0.0,
                    placed_apps: 0,
                    moves: 0,
                    migration_carbon_g: 0.0,
                });
                continue;
            }
            let app_count = apps.len();
            let mut problem = PlacementProblem::new(servers, apps, epoch.hours as f64)
                .with_latency_model(self.latency_model.clone());
            if let Some(prep) = &self.prep {
                problem = problem.with_latency_cache(Arc::clone(&prep.latency));
            }
            // Delta re-placement: every epoch after the first is solved
            // against the previous epoch's committed assignment, so the
            // placer weighs each move's forecast savings against its
            // migration cost (the deployment shape is epoch-invariant, so
            // incumbent server indices stay valid).
            if let Some(previous) = committed.take() {
                problem = problem.with_state(PlacementState::new(
                    previous,
                    vec![per_app_migration; app_count],
                ));
            }
            let decision = placer
                .place(&problem)
                .expect("CDN placement has feasible options");
            if decision.exact {
                exact_decisions += 1;
            }

            // Accounting: re-price the identical problem at the realized
            // epoch-mean intensities — the only field that differs from the
            // decision problem, so a zero-error forecast reproduces the
            // decision carbon bit for bit.  Migration carbon is a fixed
            // per-move charge, identical under decision and realized
            // pricing.
            for (server, actual) in problem.servers.iter_mut().zip(&actual_by_server) {
                server.carbon_intensity = *actual;
            }
            let realized_carbon_g = problem
                .total_carbon_g(&decision.assignment)
                .expect("committed assignment stays feasible")
                + decision.migration_carbon_g;

            let placed = decision.assignment.iter().flatten().count();
            outcome.accumulate(&PolicyOutcome {
                carbon_g: realized_carbon_g,
                energy_j: decision.total_energy_j,
                mean_latency_ms: decision.mean_latency_ms,
                placed_apps: placed,
            });
            decision_carbon_total += decision.total_carbon_g + decision.migration_carbon_g;
            moves_total += decision.moves;
            migration_total += decision.migration_carbon_g;
            epochs.push(EpochOutcome {
                index: epoch.index,
                start: epoch.start,
                hours: epoch.hours,
                carbon_g: realized_carbon_g,
                decision_carbon_g: decision.total_carbon_g + decision.migration_carbon_g,
                energy_j: decision.total_energy_j,
                mean_latency_ms: decision.mean_latency_ms,
                placed_apps: placed,
                moves: decision.moves,
                migration_carbon_g: decision.migration_carbon_g,
            });

            for assignment in decision.assignment.iter().flatten() {
                let site = server_site[*assignment];
                placements_per_site[month][site] += 1;
                assigned_intensity.push(problem.servers[*assignment].carbon_intensity);
            }
            // Event-level serving rides on top of the identical placement:
            // stream the epoch's request batches through the site queues.
            if let Some(engine) = serving_engine.as_mut() {
                engine.load_epoch(epoch.start.index(), epoch.hours);
                engine.set_assignment(&decision.assignment, &server_site, |app, server| {
                    problem.latency_ms(app, server)
                });
                engine.serve_hours(0, epoch.hours, f64::INFINITY, 0);
            }
            committed = Some(decision.assignment);
        }

        CdnResult {
            policy: placer.policy.name(),
            outcome,
            decision_carbon_g: decision_carbon_total,
            monthly: Self::monthly_from_epochs(&epochs),
            epochs,
            placements_per_site,
            assigned_intensity,
            site_names: self.sites.iter().map(|(n, _, _, _)| n.clone()).collect(),
            solver_pivots: placer.milp_solver.accumulated_pivots() - pivots_before,
            exact_decisions,
            moves: moves_total,
            migration_carbon_g: migration_total,
            serving: serving_engine.map(ServingEngine::finish),
        }
    }

    /// The online re-placement engine ([`ServingMode::OnlineReplace`]): the
    /// epoch schedule still paces the *baseline* decisions, but within an
    /// epoch the event-level loop watches observed per-site demand against
    /// the decision's assumption and re-solves the remaining window as soon
    /// as the relative drift exceeds [`CdnConfig::drift_threshold`] (after a
    /// [`CdnConfig::drift_cooldown_hours`] grace period).  Each re-solve is
    /// a delta placement against the committed incumbent with the
    /// configured migration costs, exactly like an epoch boundary; carbon
    /// is decided and accounted per *segment* (the hours a decision
    /// actually served), so an oracle forecast still realizes exactly what
    /// it promised.
    fn run_online(&self, placer: &IncrementalPlacer) -> CdnResult {
        // Online windows are cut by the drift trigger, so their intensity
        // means cannot be precomputed — only the epoch-invariant parts of
        // the prep (mean population, the pair-latency matrix) apply here.
        let mean_population = match &self.prep {
            Some(prep) => prep.mean_population,
            None => self.mean_population(),
        };
        let service = CarbonIntensityService::shared(Arc::clone(&self.traces))
            .with_forecaster(self.config.forecaster.build(), 1);
        let per_app_migration = self
            .config
            .migration
            .cost_for(self.config.model, self.config.device);
        let mut engine = self.build_serving_engine();

        let mut outcome = PolicyOutcome::default();
        let mut decision_carbon_total = 0.0f64;
        let mut placements_per_site = vec![vec![0usize; self.sites.len()]; 12];
        let mut assigned_intensity = Vec::new();
        let mut epochs = Vec::with_capacity(self.config.epoch.epoch_count());
        let pivots_before = placer.milp_solver.accumulated_pivots();
        let mut exact_decisions = 0usize;
        let mut moves_total = 0usize;
        let mut migration_total = 0.0f64;
        let mut committed: Option<Vec<Option<usize>>> = None;

        for epoch in self.config.epoch.epochs() {
            engine.load_epoch(epoch.start.index(), epoch.hours);
            let mut ep = EpochOutcome {
                index: epoch.index,
                start: epoch.start,
                hours: epoch.hours,
                carbon_g: 0.0,
                decision_carbon_g: 0.0,
                energy_j: 0.0,
                mean_latency_ms: 0.0,
                placed_apps: 0,
                moves: 0,
                migration_carbon_g: 0.0,
            };
            let mut latency_weighted = 0.0f64;
            let mut latency_weight = 0usize;
            let mut offset = 0usize;
            let mut first_segment = true;
            while offset < epoch.hours {
                let window_start = epoch.start.plus(offset);
                let window_hours = epoch.hours - offset;
                // Decide against the forecast over the *remaining* window —
                // the freshest view the placer can have mid-epoch.
                let (servers, server_site, _, apps) =
                    self.build_epoch_inputs(window_start, window_hours, &service, mean_population);
                if apps.is_empty() || servers.is_empty() {
                    break;
                }
                let app_count = apps.len();
                let problem = {
                    let mut p = PlacementProblem::new(servers, apps, window_hours as f64)
                        .with_latency_model(self.latency_model.clone());
                    if let Some(prep) = &self.prep {
                        p = p.with_latency_cache(Arc::clone(&prep.latency));
                    }
                    match committed.take() {
                        Some(previous) => p.with_state(PlacementState::new(
                            previous,
                            vec![per_app_migration; app_count],
                        )),
                        None => p,
                    }
                };
                let decision = placer
                    .place(&problem)
                    .expect("CDN placement has feasible options");
                if decision.exact {
                    exact_decisions += 1;
                }

                // Serve under this decision until the drift trigger fires
                // or the epoch ends.
                engine.set_assignment(&decision.assignment, &server_site, |app, server| {
                    problem.latency_ms(app, server)
                });
                let (segment_hours, _fired) = engine.serve_hours(
                    offset,
                    epoch.hours,
                    self.config.drift_threshold,
                    self.config.drift_cooldown_hours,
                );

                // Price the segment the decision actually served: decision
                // carbon at the forecast mean over the segment, realized
                // carbon at the actual mean — an oracle forecast makes the
                // two identical, exactly like the epoch-boundary engine.
                let (seg_servers, seg_server_site, seg_actual, seg_apps) =
                    self.build_epoch_inputs(window_start, segment_hours, &service, mean_population);
                let mut pricing =
                    PlacementProblem::new(seg_servers, seg_apps, segment_hours as f64)
                        .with_latency_model(self.latency_model.clone());
                if let Some(prep) = &self.prep {
                    pricing = pricing.with_latency_cache(Arc::clone(&prep.latency));
                }
                let seg_decision_g = pricing
                    .total_carbon_g(&decision.assignment)
                    .expect("committed assignment stays feasible")
                    + decision.migration_carbon_g;
                for (server, actual) in pricing.servers.iter_mut().zip(&seg_actual) {
                    server.carbon_intensity = *actual;
                }
                let seg_realized_g = pricing
                    .total_carbon_g(&decision.assignment)
                    .expect("committed assignment stays feasible")
                    + decision.migration_carbon_g;
                let seg_energy_j = pricing
                    .total_energy_j(&decision.assignment)
                    .expect("committed assignment stays feasible");

                let placed = decision.assignment.iter().flatten().count();
                ep.carbon_g += seg_realized_g;
                ep.decision_carbon_g += seg_decision_g;
                ep.energy_j += seg_energy_j;
                ep.moves += decision.moves;
                ep.migration_carbon_g += decision.migration_carbon_g;
                latency_weighted += decision.mean_latency_ms * placed as f64;
                latency_weight += placed;
                if first_segment {
                    ep.placed_apps = placed;
                    first_segment = false;
                }
                moves_total += decision.moves;
                migration_total += decision.migration_carbon_g;

                let month = window_start.month();
                for assignment in decision.assignment.iter().flatten() {
                    let site = seg_server_site[*assignment];
                    placements_per_site[month][site] += 1;
                    assigned_intensity.push(pricing.servers[*assignment].carbon_intensity);
                }
                committed = Some(decision.assignment);
                offset += segment_hours;
            }
            if latency_weight > 0 {
                ep.mean_latency_ms = latency_weighted / latency_weight as f64;
            }
            outcome.accumulate(&PolicyOutcome {
                carbon_g: ep.carbon_g,
                energy_j: ep.energy_j,
                mean_latency_ms: ep.mean_latency_ms,
                placed_apps: ep.placed_apps,
            });
            decision_carbon_total += ep.decision_carbon_g;
            epochs.push(ep);
        }

        CdnResult {
            policy: placer.policy.name(),
            outcome,
            decision_carbon_g: decision_carbon_total,
            monthly: Self::monthly_from_epochs(&epochs),
            epochs,
            placements_per_site,
            assigned_intensity,
            site_names: self.sites.iter().map(|(n, _, _, _)| n.clone()).collect(),
            solver_pivots: placer.milp_solver.accumulated_pivots() - pivots_before,
            exact_decisions,
            moves: moves_total,
            migration_carbon_g: migration_total,
            serving: Some(engine.finish()),
        }
    }

    /// Post-processes the per-epoch outcomes into the 12 calendar-month
    /// aggregates (each epoch attributed to the month containing its first
    /// hour).  Months are independent, so they are aggregated in parallel on
    /// the rayon worker pool; within a month, epochs fold in schedule order
    /// with the exact f64 operation sequence of the old inline loop — the
    /// first epoch assigns the fields directly instead of flowing through
    /// the weighted update (`(lat * p) / p` is not bit-exact `lat`), so the
    /// monthly view reproduces the legacy per-month numbers bit for bit for
    /// any worker count.
    fn monthly_from_epochs(epochs: &[EpochOutcome]) -> Vec<MonthlyOutcome> {
        let mut slots: Vec<(usize, MonthlyOutcome)> =
            (0..12).map(|m| (m, MonthlyOutcome::default())).collect();
        slots.par_iter_mut().for_each(|(month, out)| {
            let mut placed_so_far = 0usize;
            let mut seen = false;
            for epoch in epochs.iter().filter(|e| e.start.month() == *month) {
                if !seen {
                    seen = true;
                    *out = MonthlyOutcome {
                        carbon_g: epoch.carbon_g,
                        energy_j: epoch.energy_j,
                        mean_latency_ms: epoch.mean_latency_ms,
                    };
                    placed_so_far = epoch.placed_apps;
                } else {
                    let total_placed = placed_so_far + epoch.placed_apps;
                    if total_placed > 0 {
                        out.mean_latency_ms = (out.mean_latency_ms * placed_so_far as f64
                            + epoch.mean_latency_ms * epoch.placed_apps as f64)
                            / total_placed as f64;
                    }
                    out.carbon_g += epoch.carbon_g;
                    out.energy_j += epoch.energy_j;
                    placed_so_far = total_placed;
                }
            }
        });
        slots.into_iter().map(|(_, monthly)| monthly).collect()
    }

    /// Runs CarbonEdge and the Latency-aware baseline and returns
    /// `(carbonedge, latency_aware, savings)` — the comparison reported in
    /// Figures 11–14.
    pub fn compare(&self) -> (CdnResult, CdnResult, Savings) {
        let baseline = self.run(PlacementPolicy::LatencyAware);
        let carbonedge = self.run(PlacementPolicy::CarbonAware);
        let savings = Savings::versus(&carbonedge.outcome, &baseline.outcome);
        (carbonedge, baseline, savings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(area: ZoneArea) -> CdnConfig {
        CdnConfig::new(area).with_site_limit(60)
    }

    #[test]
    fn carbonedge_saves_substantial_carbon_in_both_continents() {
        // Figure 11a: 49.5% (US) and 67.8% (Europe) with a 20 ms limit.
        let us = CdnSimulator::new(small_config(ZoneArea::UnitedStates))
            .compare()
            .2;
        let eu = CdnSimulator::new(small_config(ZoneArea::Europe))
            .compare()
            .2;
        assert!(us.carbon_percent > 20.0, "US savings {}", us.carbon_percent);
        assert!(eu.carbon_percent > 40.0, "EU savings {}", eu.carbon_percent);
        assert!(
            eu.carbon_percent > us.carbon_percent,
            "Europe should save more: US {} EU {}",
            us.carbon_percent,
            eu.carbon_percent
        );
    }

    #[test]
    fn latency_increase_stays_within_the_limit() {
        // Figure 11b: mean round-trip latency increases by ~11 ms under a
        // 20 ms limit — bounded by the limit itself.
        let (_, _, savings) = CdnSimulator::new(small_config(ZoneArea::Europe)).compare();
        assert!(savings.latency_increase_ms > 0.0);
        assert!(savings.latency_increase_ms <= 20.0 + 1e-6);
    }

    #[test]
    fn carbonedge_shifts_load_to_greener_zones() {
        // Figure 11c: the distribution of assigned-location carbon intensity
        // shifts left under CarbonEdge.
        let sim = CdnSimulator::new(small_config(ZoneArea::Europe));
        let (ce, la, _) = sim.compare();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&ce.assigned_intensity) < mean(&la.assigned_intensity));
    }

    #[test]
    fn tighter_latency_limits_reduce_savings() {
        // Figure 12a: savings grow with the latency limit.
        let tight = CdnSimulator::new(small_config(ZoneArea::Europe).with_latency_limit(5.0))
            .compare()
            .2;
        let loose = CdnSimulator::new(small_config(ZoneArea::Europe).with_latency_limit(30.0))
            .compare()
            .2;
        assert!(
            loose.carbon_percent > tight.carbon_percent + 5.0,
            "tight {} loose {}",
            tight.carbon_percent,
            loose.carbon_percent
        );
    }

    #[test]
    fn monthly_results_cover_the_year() {
        let sim = CdnSimulator::new(small_config(ZoneArea::UnitedStates));
        let result = sim.run(PlacementPolicy::CarbonAware);
        assert_eq!(result.monthly.len(), 12);
        assert_eq!(result.placements_per_site.len(), 12);
        assert!(result.monthly.iter().all(|m| m.carbon_g > 0.0));
        // Savings vary by month but not wildly (Figure 13a shows <10% swings).
        let baseline = sim.run(PlacementPolicy::LatencyAware);
        let monthly_savings: Vec<f64> = result
            .monthly
            .iter()
            .zip(baseline.monthly.iter())
            .map(|(c, l)| (1.0 - c.carbon_g / l.carbon_g) * 100.0)
            .collect();
        let max = monthly_savings
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = monthly_savings
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!(max - min < 40.0, "monthly savings swing {max} - {min}");
    }

    #[test]
    fn population_skew_changes_savings_moderately() {
        // Figure 14: demand/capacity skew shifts savings by a few percent.
        let homo = CdnSimulator::new(small_config(ZoneArea::UnitedStates))
            .compare()
            .2;
        let demand = CdnSimulator::new(
            small_config(ZoneArea::UnitedStates).with_scenario(CdnScenario::PopulationDemand),
        )
        .compare()
        .2;
        let capacity = CdnSimulator::new(
            small_config(ZoneArea::UnitedStates).with_scenario(CdnScenario::PopulationCapacity),
        )
        .compare()
        .2;
        for s in [&demand, &capacity] {
            assert!(
                s.carbon_percent > 10.0,
                "skewed savings {}",
                s.carbon_percent
            );
            assert!((s.carbon_percent - homo.carbon_percent).abs() < 30.0);
        }
    }

    #[test]
    fn monthly_intensity_lookup_works() {
        let sim = CdnSimulator::new(small_config(ZoneArea::Europe));
        let paris = sim.monthly_intensity_of("Paris, FR").unwrap();
        assert_eq!(paris.len(), 12);
        assert!(sim.monthly_intensity_of("Atlantis").is_none());
    }

    #[test]
    fn site_limit_truncates() {
        let sim = CdnSimulator::new(CdnConfig::new(ZoneArea::Europe).with_site_limit(10));
        assert_eq!(sim.site_count(), 10);
    }

    #[test]
    fn shared_environment_matches_standalone_simulator() {
        let shared = CdnShared::new();
        let config = CdnConfig::new(ZoneArea::Europe).with_site_limit(25);
        let from_shared = shared
            .simulator(config.clone())
            .run(PlacementPolicy::CarbonAware);
        let standalone = CdnSimulator::new(config).run(PlacementPolicy::CarbonAware);
        assert_eq!(from_shared.outcome, standalone.outcome);
        assert_eq!(from_shared.monthly, standalone.monthly);
        assert_eq!(
            from_shared.placements_per_site,
            standalone.placements_per_site
        );
    }

    #[test]
    fn shared_environment_caches_traces_per_seed() {
        let shared = CdnShared::new();
        assert_eq!(shared.cached_seed_count(), 0);
        let a = shared.traces(1);
        let b = shared.traces(1);
        assert!(
            Arc::ptr_eq(&a, &b),
            "same seed must reuse the cached traces"
        );
        shared.traces(2);
        assert_eq!(shared.cached_seed_count(), 2);
    }

    #[test]
    fn shared_caches_survive_a_poisoned_lock() {
        // A sweep worker panicking while holding a cache lock poisons it.
        // Both caches are monotone insert-only maps of lazily initialized
        // slots, so the data is still structurally sound — the accessors
        // must recover instead of cascading the panic into every other
        // worker and aborting the whole sweep.
        let shared = CdnShared::new();
        let _ = shared.traces(1);
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // lint:allow(lock-poison): this test poisons the lock on purpose to exercise recovery
            let _guard = shared.traces_by_seed.lock().unwrap();
            panic!("worker dies while holding the trace-cache lock");
        }));
        assert!(poisoned.is_err());
        assert!(
            shared.traces_by_seed.lock().is_err(),
            "lock must be poisoned"
        );

        assert_eq!(shared.cached_seed_count(), 1);
        let again = shared.traces(1);
        assert!(!again.is_empty());
        let _ = shared.traces(2);
        assert_eq!(shared.cached_seed_count(), 2);

        // Same recovery discipline for the scenario-prep cache.
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // lint:allow(lock-poison): this test poisons the lock on purpose to exercise recovery
            let _guard = shared.preps.lock().unwrap();
            panic!("worker dies while holding the prep-cache lock");
        }));
        assert!(poisoned.is_err());
        let config = CdnConfig::new(ZoneArea::Europe).with_site_limit(3);
        let sim = shared.simulator(config);
        assert!(sim.prep.is_some());
        assert_eq!(shared.cached_prep_count(), 1);
    }

    #[test]
    fn run_with_reuses_a_shared_placer_template() {
        let sim = CdnSimulator::new(CdnConfig::new(ZoneArea::Europe).with_site_limit(20));
        let template = IncrementalPlacer::new(PlacementPolicy::LatencyAware).heuristic_only();
        let stamped = template.with_policy(PlacementPolicy::CarbonAware);
        let via_template = sim.run_with(&stamped);
        let direct = sim.run(PlacementPolicy::CarbonAware);
        assert_eq!(via_template.policy, "CarbonEdge");
        assert_eq!(via_template.outcome, direct.outcome);
    }

    #[test]
    fn placements_per_site_sum_matches_demand() {
        let sim = CdnSimulator::new(small_config(ZoneArea::Europe));
        let result = sim.run(PlacementPolicy::CarbonAware);
        for month_counts in &result.placements_per_site {
            let placed: usize = month_counts.iter().sum();
            // Homogeneous demand: one app per site per month, all placeable.
            assert_eq!(placed, sim.site_count());
        }
    }

    #[test]
    fn oracle_decisions_realize_exactly_what_they_promised() {
        // Under the zero-error forecast the decision and accounting
        // intensities are identical, so the realized and decision carbon
        // agree bit for bit — per epoch and in aggregate.
        let result = CdnSimulator::new(small_config(ZoneArea::Europe).with_site_limit(15))
            .run(PlacementPolicy::CarbonAware);
        assert_eq!(result.epochs.len(), 12);
        for epoch in &result.epochs {
            assert_eq!(
                epoch.carbon_g, epoch.decision_carbon_g,
                "epoch {}",
                epoch.index
            );
        }
        assert_eq!(result.outcome.carbon_g, result.decision_carbon_g);
    }

    #[test]
    fn persistence_forecasts_misprice_but_account_realized_carbon() {
        let config = small_config(ZoneArea::Europe)
            .with_site_limit(15)
            .with_forecaster(ForecasterKind::Persistence);
        let result = CdnSimulator::new(config).run(PlacementPolicy::CarbonAware);
        // A single-hour reading never equals a month's mean on the synthetic
        // traces, so decision and realized carbon must diverge.
        assert!(
            (result.outcome.carbon_g - result.decision_carbon_g).abs()
                > 1e-6 * result.outcome.carbon_g,
            "realized {} vs decision {}",
            result.outcome.carbon_g,
            result.decision_carbon_g
        );
        // Energy is intensity-independent: identical placements aside, the
        // yearly totals stay positive and finite.
        assert!(result.outcome.carbon_g > 0.0 && result.outcome.carbon_g.is_finite());
    }

    #[test]
    fn weekly_and_daily_schedules_partition_the_year() {
        for (schedule, expected) in [(EpochSchedule::Weekly, 52), (EpochSchedule::Daily, 365)] {
            let config = small_config(ZoneArea::Europe)
                .with_site_limit(8)
                .with_epoch(schedule);
            let result = CdnSimulator::new(config).run(PlacementPolicy::CarbonAware);
            assert_eq!(result.epochs.len(), expected, "{}", schedule.name());
            let hours: usize = result.epochs.iter().map(|e| e.hours).sum();
            assert_eq!(hours, carbonedge_grid::HOURS_PER_YEAR);
            // The year aggregate is the sum of the per-epoch outcomes.
            let total: f64 = result.epochs.iter().map(|e| e.carbon_g).sum();
            assert_eq!(total, result.outcome.carbon_g);
            // Every epoch is attributed to the month containing its start.
            let monthly_total: f64 = result.monthly.iter().map(|m| m.carbon_g).sum();
            assert!((monthly_total - total).abs() < 1e-6 * total.max(1.0));
            // Placements land in every epoch: one app per site per epoch.
            let placed: usize = result.epochs.iter().map(|e| e.placed_apps).sum();
            assert_eq!(placed, expected * 8);
        }
    }

    #[test]
    fn finer_epochs_with_oracle_forecasts_do_not_hurt_realized_carbon_much() {
        // Re-deciding more often against exact forecasts tracks the carbon
        // landscape at least as closely as monthly decisions at these sizes;
        // allow a small tolerance because the heuristic is not exact.
        let base = small_config(ZoneArea::Europe).with_site_limit(12);
        let monthly = CdnSimulator::new(base.clone()).run(PlacementPolicy::CarbonAware);
        let weekly = CdnSimulator::new(base.with_epoch(EpochSchedule::Weekly))
            .run(PlacementPolicy::CarbonAware);
        // Energy scales with hours, which both schedules cover identically.
        assert!(
            (weekly.outcome.energy_j - monthly.outcome.energy_j).abs()
                < 1e-6 * monthly.outcome.energy_j
        );
        assert!(
            weekly.outcome.carbon_g < monthly.outcome.carbon_g * 1.05,
            "weekly {} vs monthly {}",
            weekly.outcome.carbon_g,
            monthly.outcome.carbon_g
        );
    }

    /// A deployment whose weekly re-placement genuinely churns: the wider
    /// 30 ms reach puts near-tied zones in every feasible set, so weekly
    /// intensity rankings flip and free re-placement chases them.
    fn churning_config(epoch: EpochSchedule) -> CdnConfig {
        CdnConfig::new(ZoneArea::Europe)
            .with_site_limit(60)
            .with_latency_limit(30.0)
            .with_epoch(epoch)
    }

    #[test]
    fn free_migration_reports_churn_without_charging_carbon() {
        let result = CdnSimulator::new(churning_config(EpochSchedule::Weekly))
            .run(PlacementPolicy::CarbonAware);
        assert_eq!(result.migration_carbon_g, 0.0);
        assert!(
            result.moves > 0,
            "free weekly re-placement should chase the carbon landscape"
        );
        assert_eq!(result.epochs[0].moves, 0, "no incumbent in epoch 1");
        let epoch_moves: usize = result.epochs.iter().map(|e| e.moves).sum();
        assert_eq!(epoch_moves, result.moves);
    }

    #[test]
    fn migration_cost_reduces_churn() {
        let base = churning_config(EpochSchedule::Weekly);
        let free = CdnSimulator::new(base.clone()).run(PlacementPolicy::CarbonAware);
        let paper = CdnSimulator::new(base.with_migration(MigrationCostLevel::Paper))
            .run(PlacementPolicy::CarbonAware);
        assert!(
            paper.moves < free.moves,
            "paper migration cost must suppress churn: {} vs free {}",
            paper.moves,
            free.moves
        );
        // At the paper's lightly-loaded request rate, per-move savings sit
        // in the milligram range while a paper-calibrated move costs ~10 g,
        // so hysteresis holds everything in place: realized carbon cannot
        // beat the free re-placement run.
        assert!(paper.outcome.carbon_g >= free.outcome.carbon_g);
        // Charged migration carbon is consistent per epoch and in aggregate.
        let epoch_migration: f64 = paper.epochs.iter().map(|e| e.migration_carbon_g).sum();
        assert!((epoch_migration - paper.migration_carbon_g).abs() < 1e-9);
        let epoch_carbon: f64 = paper.epochs.iter().map(|e| e.carbon_g).sum();
        assert_eq!(epoch_carbon, paper.outcome.carbon_g);
    }

    #[test]
    fn surviving_moves_are_charged_into_realized_carbon() {
        // A heavier per-application workload (60 rps) makes some weekly
        // moves worth more than the paper-calibrated migration cost, so a
        // few survive hysteresis and their carbon is actually charged.
        let mut config = CdnConfig::new(ZoneArea::Europe)
            .with_site_limit(80)
            .with_latency_limit(30.0)
            .with_epoch(EpochSchedule::Weekly)
            .with_migration(MigrationCostLevel::Paper);
        config.request_rate_rps = 60.0;
        config.servers_per_site = 2;
        let result = CdnSimulator::new(config).run(PlacementPolicy::CarbonAware);
        assert!(
            result.moves > 0,
            "60 rps weekly moves should out-earn the paper migration cost"
        );
        let per_move = MigrationCostLevel::Paper.cost_for(ModelKind::ResNet50, DeviceKind::A2);
        assert!(
            (result.migration_carbon_g - result.moves as f64 * per_move.total_g()).abs() < 1e-6,
            "every surviving move is charged exactly once"
        );
        // Oracle pricing: decision and realized totals agree, migration
        // included on both sides.
        assert_eq!(result.outcome.carbon_g, result.decision_carbon_g);
    }

    #[test]
    fn free_migration_level_reproduces_stateless_decisions_bit_for_bit() {
        // `Free` threads the committed assignment (for churn accounting) but
        // must not alter a single decision or realized number.
        for epoch in [EpochSchedule::Monthly, EpochSchedule::Weekly] {
            let config = small_config(ZoneArea::Europe)
                .with_site_limit(12)
                .with_epoch(epoch);
            assert_eq!(config.migration, MigrationCostLevel::Free);
            let result = CdnSimulator::new(config.clone()).run(PlacementPolicy::CarbonAware);
            let again = CdnSimulator::new(config).run(PlacementPolicy::CarbonAware);
            assert_eq!(result.outcome, again.outcome);
            assert_eq!(result.monthly, again.monthly);
            assert_eq!(result.migration_carbon_g, 0.0);
            // Realized totals contain no migration term at all.
            let epoch_total: f64 = result.epochs.iter().map(|e| e.carbon_g).sum();
            assert_eq!(epoch_total, result.outcome.carbon_g);
        }
    }

    #[test]
    fn oracle_decisions_stay_exact_under_paid_migration() {
        // Migration carbon enters decision and realized totals identically,
        // so the oracle's decision carbon still equals realized carbon —
        // per epoch, on a deployment where moves actually survive the
        // hysteresis and get charged.
        let mut config = churning_config(EpochSchedule::Weekly)
            .with_site_limit(80)
            .with_migration(MigrationCostLevel::Paper);
        config.request_rate_rps = 60.0;
        config.servers_per_site = 2;
        let result = CdnSimulator::new(config).run(PlacementPolicy::CarbonAware);
        assert!(result.moves > 0);
        for epoch in &result.epochs {
            assert_eq!(
                epoch.carbon_g, epoch.decision_carbon_g,
                "epoch {}",
                epoch.index
            );
        }
        assert_eq!(result.outcome.carbon_g, result.decision_carbon_g);
    }

    #[test]
    fn event_level_serving_leaves_the_aggregate_numbers_untouched() {
        // EventLevel layers serving metrics on top of the identical
        // placement sequence: every carbon/energy/latency figure must match
        // the Aggregate run bit for bit, and only the serving field differs.
        let base = small_config(ZoneArea::Europe).with_site_limit(15);
        let aggregate = CdnSimulator::new(base.clone()).run(PlacementPolicy::CarbonAware);
        let events = CdnSimulator::new(base.with_serving(ServingMode::EventLevel))
            .run(PlacementPolicy::CarbonAware);
        assert!(aggregate.serving.is_none());
        assert_eq!(aggregate.outcome, events.outcome);
        assert_eq!(aggregate.monthly, events.monthly);
        assert_eq!(aggregate.epochs, events.epochs);
        assert_eq!(aggregate.assigned_intensity, events.assigned_intensity);
        let serving = events.serving.expect("EventLevel reports metrics");
        assert_eq!(serving.hours, carbonedge_grid::HOURS_PER_YEAR);
        assert!(serving.requests_total > 0);
        // 15 rps × 3600 is an exact integer per hour, so the stream total
        // equals the aggregate demand model's yearly request count exactly.
        let expected = 15u64 * 3600 * carbonedge_grid::HOURS_PER_YEAR as u64 * 15;
        assert_eq!(serving.requests_total, expected);
    }

    #[test]
    fn online_replace_fires_and_keeps_accounting_consistent() {
        // A hair trigger fires on the diurnal swing alone; the online engine
        // must re-place mid-epoch while keeping per-epoch sums equal to the
        // yearly aggregate and (under the oracle) decision == realized.
        let config = small_config(ZoneArea::Europe)
            .with_site_limit(10)
            .with_serving(ServingMode::OnlineReplace)
            .with_drift(0.05, 24);
        let result = CdnSimulator::new(config).run(PlacementPolicy::CarbonAware);
        let serving = result.serving.expect("OnlineReplace reports metrics");
        assert!(
            serving.online_replacements > 0,
            "a 5% threshold must fire against a 35% diurnal swing"
        );
        assert_eq!(serving.hours, carbonedge_grid::HOURS_PER_YEAR);
        let epoch_total: f64 = result.epochs.iter().map(|e| e.carbon_g).sum();
        assert_eq!(epoch_total, result.outcome.carbon_g);
        for epoch in &result.epochs {
            assert_eq!(
                epoch.carbon_g, epoch.decision_carbon_g,
                "oracle segment pricing, epoch {}",
                epoch.index
            );
        }
        assert_eq!(result.outcome.carbon_g, result.decision_carbon_g);
    }

    #[test]
    fn online_replace_with_infinite_threshold_matches_epoch_boundaries() {
        // A trigger that never fires degenerates to one segment per epoch —
        // the same decisions as the epoch-boundary engine.
        let base = small_config(ZoneArea::Europe).with_site_limit(12);
        let epochal = CdnSimulator::new(base.clone().with_serving(ServingMode::EventLevel))
            .run(PlacementPolicy::CarbonAware);
        let online = CdnSimulator::new(
            base.with_serving(ServingMode::OnlineReplace)
                .with_drift(f64::INFINITY, 24),
        )
        .run(PlacementPolicy::CarbonAware);
        assert_eq!(online.serving.expect("metrics").online_replacements, 0);
        assert_eq!(epochal.outcome.carbon_g, online.outcome.carbon_g);
        assert_eq!(epochal.outcome.energy_j, online.outcome.energy_j);
        assert_eq!(epochal.moves, online.moves);
    }

    #[test]
    fn exact_path_runs_surface_warm_start_pivots() {
        // A tiny deployment keeps apps x servers under the exact-size limit,
        // so every epoch goes through the warm-started MILP path.
        let mut config = CdnConfig::new(ZoneArea::Europe).with_site_limit(3);
        config.servers_per_site = 2;
        let sim = CdnSimulator::new(config);
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        let first = sim.run_with(&placer);
        assert_eq!(first.exact_decisions, 12);
        assert!(first.solver_pivots > 0, "exact runs must report pivots");
        // A second run on the warm placer re-solves cost-only changes and
        // must not spend more pivots than the cold run.
        let second = sim.run_with(&placer);
        assert_eq!(second.exact_decisions, 12);
        assert!(
            second.solver_pivots <= first.solver_pivots,
            "warm {} vs cold {}",
            second.solver_pivots,
            first.solver_pivots
        );
        assert_eq!(first.outcome, second.outcome, "warm restarts stay exact");
        // Heuristic runs spend no exact-path pivots.
        let heuristic = sim.run(PlacementPolicy::CarbonAware);
        assert_eq!(heuristic.solver_pivots, 0);
        assert_eq!(heuristic.exact_decisions, 0);
    }
}
