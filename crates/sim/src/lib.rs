#![forbid(unsafe_code)]
//! Trace-driven simulation of CarbonEdge deployments (Section 5.2 / 6).
//!
//! The paper evaluates CarbonEdge on a real regional testbed (Section 6.2)
//! and through a year-long CDN-scale simulation (Section 6.3–6.5).  This
//! crate provides both, driving the same placement service
//! (`carbonedge-core`) that a production deployment would use:
//!
//! * [`testbed`] — the 5-site regional deployments (Florida and Central EU)
//!   evaluated over 24 hours with CPU and GPU applications (Figures 8–10);
//! * [`cdn`] — the continental-scale CDN simulation across the Akamai-like
//!   edge-site catalog, including the latency-limit sweep, seasonality,
//!   and demand/capacity-skew experiments (Figures 11–14);
//! * [`hetero`] — the device-heterogeneity and policy comparison experiment
//!   (Figure 15);
//! * [`tradeoff`] — the carbon–energy α-sweep (Figure 16);
//! * [`serving`] — the batched event-level serving engine (per-hour request
//!   streams, site queues, tail-latency metrics, the online re-placement
//!   trigger);
//! * [`metrics`] — shared result types (per-policy totals, savings,
//!   latency overheads).

pub mod cdn;
pub mod hetero;
pub mod metrics;
pub mod serving;
pub mod testbed;
pub mod tradeoff;

pub use cdn::{CdnConfig, CdnResult, CdnScenario, CdnShared, CdnSimulator, EpochOutcome};
pub use hetero::{HeterogeneityConfig, HeterogeneityResult};
pub use metrics::{PolicyOutcome, Savings};
pub use serving::{ServingMetrics, ServingMode};
pub use testbed::{TestbedConfig, TestbedResult, TestbedWorkload};
pub use tradeoff::{TradeoffPoint, TradeoffSweep};
