//! Regional (mesoscale) testbed emulation — Figures 8, 9 and 10.
//!
//! The paper's testbed deploys five edge data centers across the Florida and
//! Central-EU regions (one Dell R630 + NVIDIA A2 per site), runs a CPU-based
//! sensor-processing application ("Sci") and a GPU model-serving application
//! (ResNet50), and compares the Latency-aware baseline with CarbonEdge over
//! 24 hours.  This module reproduces that experiment in simulation, driving
//! the same incremental placement service.

use crate::metrics::{PolicyOutcome, Savings};
use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::{MesoscaleRegion, StudyRegion, ZoneCatalog};
use carbonedge_grid::{CarbonTrace, HourOfYear};
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind, WorkloadProfile};
use std::collections::HashMap;

/// The two testbed workloads of Section 6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestbedWorkload {
    /// CPU-based scientific/sensor processing application.
    SciCpu,
    /// GPU-based ResNet50 model serving.
    ResNet50,
}

impl TestbedWorkload {
    /// The workload's model kind.
    pub fn model(&self) -> ModelKind {
        match self {
            TestbedWorkload::SciCpu => ModelKind::SciCpu,
            TestbedWorkload::ResNet50 => ModelKind::ResNet50,
        }
    }

    /// The device installed in every testbed server for this workload.
    pub fn device(&self) -> DeviceKind {
        match self {
            TestbedWorkload::SciCpu => DeviceKind::XeonCpu,
            TestbedWorkload::ResNet50 => DeviceKind::A2,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            TestbedWorkload::SciCpu => "Sci",
            TestbedWorkload::ResNet50 => "ResNet50",
        }
    }
}

/// Configuration of one regional testbed run.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Which mesoscale region to deploy in.
    pub region: StudyRegion,
    /// Which workload to run.
    pub workload: TestbedWorkload,
    /// Per-application request rate (requests/second).
    pub request_rate_rps: f64,
    /// Round-trip latency SLO (ms); the paper uses 20 ms (~500 km).
    pub latency_slo_ms: f64,
    /// First hour of the 24-hour window within the simulated year.
    pub start_hour: usize,
    /// Trace-generation seed.
    pub seed: u64,
}

impl TestbedConfig {
    /// The paper's default configuration for a region and workload.
    pub fn new(region: StudyRegion, workload: TestbedWorkload) -> Self {
        Self {
            region,
            workload,
            request_rate_rps: 15.0,
            latency_slo_ms: 20.0,
            start_hour: 24 * 195, // a mid-July day, matching Figure 1b's window
            seed: 42,
        }
    }
}

/// Result of one regional testbed run for one policy.
#[derive(Debug, Clone)]
pub struct TestbedPolicyResult {
    /// Policy name.
    pub policy: String,
    /// Hourly carbon emissions per origin zone (g CO2eq), 24 values each.
    pub hourly_emissions: Vec<(String, Vec<f64>)>,
    /// End-to-end response time per origin zone (network RTT + processing), ms.
    pub response_time_ms: Vec<(String, f64)>,
    /// Aggregate outcome over the 24 hours.
    pub outcome: PolicyOutcome,
}

/// Result of a full regional testbed comparison.
#[derive(Debug, Clone)]
pub struct TestbedResult {
    /// Region name.
    pub region: String,
    /// Workload name.
    pub workload: String,
    /// Hourly carbon intensity per zone (g/kWh), 24 values each (Figure 8a).
    pub hourly_intensity: Vec<(String, Vec<f64>)>,
    /// Per-policy results.
    pub policies: Vec<TestbedPolicyResult>,
    /// Savings of CarbonEdge versus the Latency-aware baseline (Figure 10).
    pub savings: Savings,
}

impl TestbedResult {
    /// Looks up the result of one policy.
    pub fn policy(&self, name: &str) -> Option<&TestbedPolicyResult> {
        self.policies.iter().find(|p| p.policy == name)
    }
}

/// Runs the regional testbed experiment for one configuration, comparing the
/// Latency-aware baseline with CarbonEdge (and any extra policies supplied).
pub fn run_testbed(config: &TestbedConfig) -> TestbedResult {
    run_testbed_with_policies(
        config,
        &[PlacementPolicy::LatencyAware, PlacementPolicy::CarbonAware],
    )
}

/// Runs the regional testbed experiment with an explicit policy list.
pub fn run_testbed_with_policies(
    config: &TestbedConfig,
    policies: &[PlacementPolicy],
) -> TestbedResult {
    let catalog = ZoneCatalog::worldwide();
    let region = MesoscaleRegion::resolve(config.region, &catalog);
    let traces = catalog.generate_traces(config.seed);
    let latency_model = LatencyModel::deterministic();
    let device = config.workload.device();
    let profile = WorkloadProfile::lookup(config.workload.model(), device)
        .expect("testbed workload runs on its testbed device");

    // Hourly intensity per zone (Figure 8a).
    let hourly_intensity: Vec<(String, Vec<f64>)> = region
        .zones
        .iter()
        .zip(region.members.iter())
        .map(|(zone, (name, _))| {
            let series: Vec<f64> = (0..24)
                .map(|h| traces[zone.index()].at(HourOfYear::new(config.start_hour + h)))
                .collect();
            (name.clone(), series)
        })
        .collect();

    let mut results = Vec::new();
    for policy in policies {
        results.push(run_policy(
            config,
            &region,
            &traces,
            &latency_model,
            &profile,
            *policy,
        ));
    }

    let baseline = results
        .iter()
        .find(|r| r.policy == PlacementPolicy::LatencyAware.name())
        .map(|r| r.outcome)
        .unwrap_or_default();
    let carbonedge = results
        .iter()
        .find(|r| r.policy == PlacementPolicy::CarbonAware.name())
        .map(|r| r.outcome)
        .unwrap_or(baseline);

    TestbedResult {
        region: config.region.name().to_string(),
        workload: config.workload.name().to_string(),
        hourly_intensity,
        policies: results,
        savings: Savings::versus(&carbonedge, &baseline),
    }
}

fn run_policy(
    config: &TestbedConfig,
    region: &MesoscaleRegion,
    traces: &[CarbonTrace],
    latency_model: &LatencyModel,
    profile: &WorkloadProfile,
    policy: PlacementPolicy,
) -> TestbedPolicyResult {
    let placer = IncrementalPlacer::new(policy);
    let n = region.members.len();
    let mut hourly_emissions: Vec<(String, Vec<f64>)> = region
        .members
        .iter()
        .map(|(name, _)| (name.clone(), Vec::with_capacity(24)))
        .collect();
    let mut response_accum: HashMap<usize, (f64, usize)> = HashMap::new();
    let mut outcome = PolicyOutcome::default();

    for h in 0..24 {
        let now = HourOfYear::new(config.start_hour + h);
        // One server per site, powered on, with the hour's forecast intensity.
        let servers: Vec<ServerSnapshot> = region
            .zones
            .iter()
            .zip(region.members.iter())
            .enumerate()
            .map(|(site, (zone, (_, loc)))| {
                ServerSnapshot::new(site, site, *zone, config.workload.device(), *loc)
                    .with_carbon_intensity(traces[zone.index()].at(now))
            })
            .collect();
        // One application per site, originating at that site's location.
        let apps: Vec<Application> = region
            .members
            .iter()
            .enumerate()
            .map(|(i, (_, loc))| {
                Application::new(
                    AppId(i),
                    config.workload.model(),
                    config.request_rate_rps,
                    config.latency_slo_ms,
                    *loc,
                    i,
                )
            })
            .collect();
        let problem =
            PlacementProblem::new(servers, apps, 1.0).with_latency_model(latency_model.clone());
        let decision = placer
            .place(&problem)
            .expect("testbed placement is feasible");

        outcome.accumulate(&PolicyOutcome {
            carbon_g: decision.total_carbon_g,
            energy_j: decision.total_energy_j,
            mean_latency_ms: decision.mean_latency_ms,
            placed_apps: n - decision.unplaced.len(),
        });

        for (i, emissions) in hourly_emissions.iter_mut().enumerate().take(n) {
            let emission = match decision.assignment[i] {
                Some(j) => problem.operational_carbon_g(i, j).unwrap_or(0.0),
                None => 0.0,
            };
            emissions.1.push(emission);
            if let Some(j) = decision.assignment[i] {
                let rtt = problem.latency_ms(i, j);
                let response = rtt + profile.processing_time_ms;
                let entry = response_accum.entry(i).or_insert((0.0, 0));
                entry.0 += response;
                entry.1 += 1;
            }
        }
    }

    let response_time_ms: Vec<(String, f64)> = region
        .members
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            let (sum, count) = response_accum.get(&i).copied().unwrap_or((0.0, 0));
            (
                name.clone(),
                if count > 0 { sum / count as f64 } else { 0.0 },
            )
        })
        .collect();

    TestbedPolicyResult {
        policy: policy.name(),
        hourly_emissions,
        response_time_ms,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn florida_carbonedge_saves_carbon_with_small_latency_cost() {
        // Figure 10: ~39% savings in Florida with a ~6.6 ms latency increase.
        let result = run_testbed(&TestbedConfig::new(
            StudyRegion::Florida,
            TestbedWorkload::SciCpu,
        ));
        assert!(
            result.savings.carbon_percent > 15.0 && result.savings.carbon_percent < 60.0,
            "Florida savings {}",
            result.savings.carbon_percent
        );
        assert!(
            result.savings.latency_increase_ms > 1.0 && result.savings.latency_increase_ms < 20.0,
            "latency increase {}",
            result.savings.latency_increase_ms
        );
    }

    #[test]
    fn central_eu_savings_exceed_florida_savings() {
        // Figure 10: Central EU reaches ~78.7% savings, far above Florida.
        let florida = run_testbed(&TestbedConfig::new(
            StudyRegion::Florida,
            TestbedWorkload::SciCpu,
        ));
        let eu = run_testbed(&TestbedConfig::new(
            StudyRegion::CentralEu,
            TestbedWorkload::SciCpu,
        ));
        assert!(
            eu.savings.carbon_percent > florida.savings.carbon_percent + 10.0,
            "EU {} vs FL {}",
            eu.savings.carbon_percent,
            florida.savings.carbon_percent
        );
        assert!(
            eu.savings.carbon_percent > 55.0 && eu.savings.carbon_percent < 95.0,
            "EU savings {}",
            eu.savings.carbon_percent
        );
    }

    #[test]
    fn gpu_workload_emits_less_than_cpu_workload() {
        // Figure 10a: the GPU application emits less carbon in absolute terms
        // because it draws far less power per request.
        let cpu = run_testbed(&TestbedConfig::new(
            StudyRegion::Florida,
            TestbedWorkload::SciCpu,
        ));
        let gpu = run_testbed(&TestbedConfig::new(
            StudyRegion::Florida,
            TestbedWorkload::ResNet50,
        ));
        let cpu_latency_aware = cpu.policy("Latency-aware").unwrap().outcome.carbon_g;
        let gpu_latency_aware = gpu.policy("Latency-aware").unwrap().outcome.carbon_g;
        assert!(gpu_latency_aware < cpu_latency_aware);
        // Savings percentages stay in the same ballpark across workloads
        // because the placement decisions are the same.
        assert!((cpu.savings.carbon_percent - gpu.savings.carbon_percent).abs() < 15.0);
    }

    #[test]
    fn carbonedge_consolidates_into_greenest_zone() {
        // Figure 8c: CarbonEdge serves every application from the greenest
        // zone (Miami), so per-zone emissions become nearly identical.
        let result = run_testbed(&TestbedConfig::new(
            StudyRegion::Florida,
            TestbedWorkload::SciCpu,
        ));
        let ce = result.policy("CarbonEdge").unwrap();
        let totals: Vec<f64> = ce
            .hourly_emissions
            .iter()
            .map(|(_, series)| series.iter().sum::<f64>())
            .collect();
        let max = totals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = totals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max - min < 0.15 * max,
            "per-zone totals spread too much: {totals:?}"
        );
    }

    #[test]
    fn latency_aware_emissions_track_local_intensity() {
        // Figure 8b: under Latency-aware, each zone's emissions follow its
        // own carbon intensity, so the dirtiest zone emits the most.
        let result = run_testbed(&TestbedConfig::new(
            StudyRegion::Florida,
            TestbedWorkload::SciCpu,
        ));
        let la = result.policy("Latency-aware").unwrap();
        let mut totals: Vec<(String, f64)> = la
            .hourly_emissions
            .iter()
            .map(|(name, series)| (name.clone(), series.iter().sum::<f64>()))
            .collect();
        totals.sort_by(|a, b| b.1.total_cmp(&a.1));
        // Miami (the greenest Florida zone) must not be the top emitter.
        assert_ne!(totals[0].0, "Miami");
        // And the spread across zones must be visible.
        assert!(totals[0].1 > totals.last().unwrap().1 * 1.2);
    }

    #[test]
    fn response_times_are_bounded_by_slo_plus_processing() {
        // Figure 9: response-time increases stay within ~10 ms because all
        // placements respect the 20 ms round-trip SLO.
        let result = run_testbed(&TestbedConfig::new(
            StudyRegion::Florida,
            TestbedWorkload::ResNet50,
        ));
        let profile = WorkloadProfile::lookup(ModelKind::ResNet50, DeviceKind::A2).unwrap();
        for policy in &result.policies {
            for (_, rt) in &policy.response_time_ms {
                assert!(*rt <= 20.0 + profile.processing_time_ms + 1e-6, "rt {rt}");
            }
        }
        let la = result.policy("Latency-aware").unwrap();
        let ce = result.policy("CarbonEdge").unwrap();
        for ((_, rt_la), (_, rt_ce)) in la.response_time_ms.iter().zip(ce.response_time_ms.iter()) {
            assert!(
                rt_ce + 1e-9 >= *rt_la,
                "CarbonEdge cannot be faster than local serving"
            );
        }
    }

    #[test]
    fn hourly_series_have_24_points() {
        let result = run_testbed(&TestbedConfig::new(
            StudyRegion::CentralEu,
            TestbedWorkload::SciCpu,
        ));
        assert_eq!(result.hourly_intensity.len(), 5);
        assert!(result.hourly_intensity.iter().all(|(_, s)| s.len() == 24));
        for p in &result.policies {
            assert!(p.hourly_emissions.iter().all(|(_, s)| s.len() == 24));
        }
    }

    #[test]
    fn testbed_run_is_deterministic() {
        let config = TestbedConfig::new(StudyRegion::Florida, TestbedWorkload::SciCpu);
        let a = run_testbed(&config);
        let b = run_testbed(&config);
        assert_eq!(a.savings.carbon_percent, b.savings.carbon_percent);
        assert_eq!(
            a.policy("CarbonEdge").unwrap().outcome.carbon_g,
            b.policy("CarbonEdge").unwrap().outcome.carbon_g
        );
    }
}
