//! Shared result types for the simulation experiments.

use serde::{Deserialize, Serialize};

/// Aggregate outcome of running one policy over one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Total carbon emissions in grams CO2-equivalent.
    pub carbon_g: f64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// Mean round-trip network latency of placed applications, ms.
    pub mean_latency_ms: f64,
    /// Number of applications placed.
    pub placed_apps: usize,
}

impl PolicyOutcome {
    /// Accumulates another outcome (latency averaged by placed apps).
    pub fn accumulate(&mut self, other: &PolicyOutcome) {
        let total_apps = self.placed_apps + other.placed_apps;
        if total_apps > 0 {
            self.mean_latency_ms = (self.mean_latency_ms * self.placed_apps as f64
                + other.mean_latency_ms * other.placed_apps as f64)
                / total_apps as f64;
        }
        self.carbon_g += other.carbon_g;
        self.energy_j += other.energy_j;
        self.placed_apps = total_apps;
    }

    /// Carbon in metric tons.
    pub fn carbon_t(&self) -> f64 {
        self.carbon_g / 1e6
    }

    /// Energy in kWh.
    pub fn energy_kwh(&self) -> f64 {
        self.energy_j / 3.6e6
    }
}

/// Savings of a policy relative to the Latency-aware baseline — the metric
/// the paper reports throughout Section 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Savings {
    /// Relative carbon savings in percent (positive = fewer emissions).
    pub carbon_percent: f64,
    /// Increase in mean round-trip latency in ms (positive = slower).
    pub latency_increase_ms: f64,
    /// Ratio of energy consumption (policy / baseline).
    pub energy_ratio: f64,
}

impl Savings {
    /// Computes savings of `policy` versus `baseline`.
    pub fn versus(policy: &PolicyOutcome, baseline: &PolicyOutcome) -> Savings {
        let carbon_percent = if baseline.carbon_g > 0.0 {
            (1.0 - policy.carbon_g / baseline.carbon_g) * 100.0
        } else {
            0.0
        };
        let energy_ratio = if baseline.energy_j > 0.0 {
            policy.energy_j / baseline.energy_j
        } else {
            1.0
        };
        Savings {
            carbon_percent,
            latency_increase_ms: policy.mean_latency_ms - baseline.mean_latency_ms,
            energy_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_merges_and_averages_latency() {
        let mut a = PolicyOutcome {
            carbon_g: 10.0,
            energy_j: 100.0,
            mean_latency_ms: 4.0,
            placed_apps: 2,
        };
        let b = PolicyOutcome {
            carbon_g: 20.0,
            energy_j: 300.0,
            mean_latency_ms: 10.0,
            placed_apps: 4,
        };
        a.accumulate(&b);
        assert_eq!(a.carbon_g, 30.0);
        assert_eq!(a.energy_j, 400.0);
        assert_eq!(a.placed_apps, 6);
        assert!((a.mean_latency_ms - 8.0).abs() < 1e-9);
    }

    #[test]
    fn accumulate_with_empty_outcome_is_identity() {
        let mut a = PolicyOutcome {
            carbon_g: 5.0,
            energy_j: 50.0,
            mean_latency_ms: 3.0,
            placed_apps: 1,
        };
        a.accumulate(&PolicyOutcome::default());
        assert_eq!(a.placed_apps, 1);
        assert_eq!(a.mean_latency_ms, 3.0);
    }

    #[test]
    fn savings_versus_baseline() {
        let policy = PolicyOutcome {
            carbon_g: 30.0,
            energy_j: 200.0,
            mean_latency_ms: 12.0,
            placed_apps: 5,
        };
        let baseline = PolicyOutcome {
            carbon_g: 100.0,
            energy_j: 100.0,
            mean_latency_ms: 5.0,
            placed_apps: 5,
        };
        let s = Savings::versus(&policy, &baseline);
        assert!((s.carbon_percent - 70.0).abs() < 1e-9);
        assert!((s.latency_increase_ms - 7.0).abs() < 1e-9);
        assert!((s.energy_ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn savings_with_zero_baseline_are_neutral() {
        let s = Savings::versus(&PolicyOutcome::default(), &PolicyOutcome::default());
        assert_eq!(s.carbon_percent, 0.0);
        assert_eq!(s.energy_ratio, 1.0);
    }

    #[test]
    fn unit_conversions() {
        let o = PolicyOutcome {
            carbon_g: 2.5e6,
            energy_j: 7.2e6,
            mean_latency_ms: 0.0,
            placed_apps: 0,
        };
        assert!((o.carbon_t() - 2.5).abs() < 1e-12);
        assert!((o.energy_kwh() - 2.0).abs() < 1e-12);
    }
}
