//! Event-level serving engine: batched per-hour request simulation.
//!
//! The aggregate CDN model prices hour-aggregated demand; this module
//! re-simulates the same year at request granularity.  For every hour each
//! application's [`RequestStream`]
//! materializes a request *batch* into reusable structure-of-arrays buffers
//! (no per-request allocations), the batches are routed through per-site
//! queues with admission control and latency-aware spill to the nearest
//! alternate site, and the drained totals feed a weighted latency histogram
//! from which tail percentiles (p50/p95/p99), drop rates and utilization are
//! read.  Streams conserve the aggregate demand model exactly (per-hour
//! counts sum to `rate × 3600 × hours` per window), so the carbon accounting
//! of the aggregate path is untouched — the event level *adds* serving
//! metrics on top.
//!
//! The engine also powers the online re-placement trigger: it tracks
//! observed per-site demand against the assumption baked into the last
//! placement decision and reports when the relative drift exceeds a
//! threshold, at which point the simulator re-solves mid-epoch (see
//! `CdnSimulator::run_online`).

use carbonedge_net::LatencyModel;
use carbonedge_workload::{RequestStream, StreamScratch};

/// Latency histogram resolution (ms per bin).
const BIN_MS: f64 = 0.25;
/// Histogram bins; the last bin collects everything ≥ `BIN_MS * (BINS - 1)`.
const BINS: usize = 4096;
/// Admission control: a site queues at most this many hours' worth of its
/// capacity; requests beyond that spill to the fallback site or drop.
const MAX_BACKLOG_HOURS: f64 = 0.25;
/// Queueing-delay utilization clamp for the M/D/1 waiting-time term.
const RHO_CLAMP: f64 = 0.98;

/// How the simulator serves demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServingMode {
    /// Hour-aggregated demand (the legacy model); no serving metrics.
    #[default]
    Aggregate,
    /// Batched event-level serving on top of the aggregate carbon
    /// accounting: per-hour request batches, per-site queues, tail metrics.
    EventLevel,
    /// Event-level serving plus the online re-placement trigger: the
    /// placement is re-solved mid-epoch whenever observed per-site demand
    /// drifts past the configured threshold from the decision's assumption.
    OnlineReplace,
}

impl ServingMode {
    /// Every mode, in sweep-axis order.
    pub const ALL: [ServingMode; 3] = [
        ServingMode::Aggregate,
        ServingMode::EventLevel,
        ServingMode::OnlineReplace,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ServingMode::Aggregate => "Aggregate",
            ServingMode::EventLevel => "EventLevel",
            ServingMode::OnlineReplace => "OnlineReplace",
        }
    }

    /// Short label used in sweep cell labels.
    pub fn label(&self) -> &'static str {
        match self {
            ServingMode::Aggregate => "agg",
            ServingMode::EventLevel => "events",
            ServingMode::OnlineReplace => "events-online",
        }
    }

    /// Whether the mode runs the event-level serving loop.
    pub fn is_event_level(&self) -> bool {
        !matches!(self, ServingMode::Aggregate)
    }
}

/// Serving-quality metrics drained from the event loop over a full run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServingMetrics {
    /// Requests materialized from the streams (exact integer total).
    pub requests_total: u64,
    /// Requests served (locally or after spill), in request units.
    pub served: f64,
    /// Requests served at the fallback site after spilling.
    pub rerouted: f64,
    /// Requests rejected by admission control.
    pub dropped: f64,
    /// Median end-to-end latency of served requests, ms.
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// Mean per-site utilization over all site-hours.
    pub mean_utilization: f64,
    /// Highest single site-hour utilization observed (clamped to 1).
    pub peak_utilization: f64,
    /// Hours simulated.
    pub hours: usize,
    /// Mid-epoch re-placements triggered by demand drift
    /// ([`ServingMode::OnlineReplace`] only).
    pub online_replacements: usize,
}

impl ServingMetrics {
    /// Dropped requests as a percentage of the total.
    pub fn drop_percent(&self) -> f64 {
        if self.requests_total == 0 {
            0.0
        } else {
            self.dropped / self.requests_total as f64 * 100.0
        }
    }
}

/// The batched event loop.  One engine lives for a whole simulation run; all
/// buffers are structure-of-arrays and reused across hours and epochs.
pub struct ServingEngine {
    streams: Vec<RequestStream>,
    scratch: StreamScratch,
    /// Flat `[app][hour-in-epoch]` request counts for the current epoch.
    epoch_counts: Vec<u64>,
    epoch_hours: usize,

    // Per-site state (index = site).
    capacity_per_hour: Vec<f64>,
    backlog: Vec<f64>,
    arrivals: Vec<f64>,
    used: Vec<f64>,
    site_total: Vec<f64>,
    spill: Vec<f64>,
    frac_local: Vec<f64>,
    frac_reroute: Vec<f64>,
    frac_drop: Vec<f64>,
    queue_delay_ms: Vec<f64>,
    fallback: Vec<usize>,
    fallback_penalty_ms: Vec<f64>,
    /// Demand (requests/hour) the current placement assumed per site.
    assumed: Vec<f64>,

    // Per-app state (index = app).
    app_site: Vec<usize>,
    app_base_ms: Vec<f64>,

    /// Per-request service time of the configured (model, device), ms.
    service_ms: f64,
    hist: Vec<f64>,

    // Accumulators.
    requests_total: u64,
    served: f64,
    rerouted: f64,
    dropped: f64,
    util_sum: f64,
    util_samples: u64,
    peak_utilization: f64,
    hours: usize,
    online_replacements: usize,
}

impl ServingEngine {
    /// Builds an engine for a deployment: one stream per app (seeded from
    /// its (app, origin-site) pair), per-site hourly capacities, and each
    /// site's nearest-alternate fallback for latency-aware spill.
    pub fn new(
        streams: Vec<RequestStream>,
        site_locations: &[carbonedge_geo::Coordinates],
        servers_per_site: &[usize],
        max_throughput_rps: f64,
        service_ms: f64,
        latency_model: &LatencyModel,
    ) -> Self {
        let site_count = site_locations.len();
        let capacity_per_hour: Vec<f64> = servers_per_site
            .iter()
            .map(|&n| n as f64 * max_throughput_rps * 3600.0)
            .collect();
        // Nearest other site by round-trip time; spilled requests pay the
        // inter-site hop on top of their origin latency.
        let mut fallback = vec![usize::MAX; site_count];
        let mut fallback_penalty_ms = vec![0.0; site_count];
        for s in 0..site_count {
            let mut best = usize::MAX;
            let mut best_rtt = f64::INFINITY;
            for t in 0..site_count {
                if t == s {
                    continue;
                }
                let rtt = latency_model.round_trip_ms(site_locations[s], site_locations[t]);
                if rtt < best_rtt {
                    best_rtt = rtt;
                    best = t;
                }
            }
            fallback[s] = best;
            fallback_penalty_ms[s] = if best == usize::MAX { 0.0 } else { best_rtt };
        }
        let app_count = streams.len();
        Self {
            streams,
            scratch: StreamScratch::default(),
            epoch_counts: Vec::new(),
            epoch_hours: 0,
            capacity_per_hour,
            backlog: vec![0.0; site_count],
            arrivals: vec![0.0; site_count],
            used: vec![0.0; site_count],
            site_total: vec![0.0; site_count],
            spill: vec![0.0; site_count],
            frac_local: vec![0.0; site_count],
            frac_reroute: vec![0.0; site_count],
            frac_drop: vec![0.0; site_count],
            queue_delay_ms: vec![0.0; site_count],
            fallback,
            fallback_penalty_ms,
            assumed: vec![0.0; site_count],
            app_site: vec![usize::MAX; app_count],
            app_base_ms: vec![0.0; app_count],
            service_ms,
            hist: vec![0.0; BINS],
            requests_total: 0,
            served: 0.0,
            rerouted: 0.0,
            dropped: 0.0,
            util_sum: 0.0,
            util_samples: 0,
            peak_utilization: 0.0,
            hours: 0,
            online_replacements: 0,
        }
    }

    /// Materializes the per-hour request batches for an epoch window into
    /// the flat SoA count buffer (reused across epochs).
    pub fn load_epoch(&mut self, start_hour: usize, hours: usize) {
        self.epoch_hours = hours;
        self.epoch_counts.clear();
        self.epoch_counts.resize(self.streams.len() * hours, 0);
        for (i, stream) in self.streams.iter().enumerate() {
            let slice = &mut self.epoch_counts[i * hours..(i + 1) * hours];
            stream.fill_hourly_counts(start_hour, slice, &mut self.scratch);
        }
    }

    /// Installs a placement decision: per-app target site and base latency
    /// (round-trip to the assigned server plus service time), and the
    /// per-site demand the decision assumed (for drift monitoring).
    pub fn set_assignment(
        &mut self,
        assignment: &[Option<usize>],
        server_site: &[usize],
        latency_ms: impl Fn(usize, usize) -> f64,
    ) {
        self.assumed.iter_mut().for_each(|a| *a = 0.0);
        for (app, assigned) in assignment.iter().enumerate() {
            match assigned {
                Some(server) => {
                    let site = server_site[*server];
                    self.app_site[app] = site;
                    self.app_base_ms[app] = latency_ms(app, *server) + self.service_ms;
                    self.assumed[site] += self.streams[app].rate_rps * 3600.0;
                }
                None => {
                    self.app_site[app] = usize::MAX;
                    self.app_base_ms[app] = 0.0;
                }
            }
        }
    }

    /// Serves hours `[from, to)` of the loaded epoch.  Drift is checked each
    /// hour once `cooldown` hours of the current decision have been served;
    /// when the observed per-site demand deviates from the decision's
    /// assumption by more than `drift_threshold` (relative), serving stops
    /// *after* the offending hour and the number of hours served is
    /// returned together with `true`.  A non-finite threshold disables the
    /// trigger (plain [`ServingMode::EventLevel`]).
    pub fn serve_hours(
        &mut self,
        from: usize,
        to: usize,
        drift_threshold: f64,
        cooldown: usize,
    ) -> (usize, bool) {
        debug_assert!(to <= self.epoch_hours);
        for hour in from..to {
            let drift = self.step_hour(hour);
            if drift_threshold.is_finite() && hour + 1 - from > cooldown && drift > drift_threshold
            {
                self.online_replacements += 1;
                return (hour + 1 - from, true);
            }
        }
        (to - from, false)
    }

    /// One batched hour: route request batches to their assigned sites,
    /// drain per-site queues under admission control, spill overflow to the
    /// fallback site, and fold latencies into the histogram.  Returns the
    /// maximum relative per-site demand drift observed this hour.
    fn step_hour(&mut self, hour: usize) -> f64 {
        let hours = self.epoch_hours;
        let sites = self.capacity_per_hour.len();
        self.arrivals.iter_mut().for_each(|a| *a = 0.0);

        // Phase 1: materialize this hour's batches onto their target sites.
        let mut hour_total = 0u64;
        for (app, &site) in self.app_site.iter().enumerate() {
            let count = self.epoch_counts[app * hours + hour];
            hour_total += count;
            if site != usize::MAX {
                self.arrivals[site] += count as f64;
            } else {
                // Unplaced applications cannot be served at all.
                self.dropped += count as f64;
            }
        }
        self.requests_total += hour_total;

        // Phase 2: drain each site queue; compute local service, admitted
        // backlog and spill beyond the admission bound.
        let mut max_drift = 0.0f64;
        for s in 0..sites {
            let cap = self.capacity_per_hour[s];
            let backlog_before = self.backlog[s];
            let total = backlog_before + self.arrivals[s];
            let served_local = total.min(cap);
            let overflow = total - served_local;
            let admitted = overflow.min(cap * MAX_BACKLOG_HOURS);
            self.spill[s] = overflow - admitted;
            self.backlog[s] = admitted;
            self.used[s] = served_local;
            self.site_total[s] = total;
            // Waiting time: drain the queue ahead of you, plus the M/D/1
            // in-hour queueing term at the hour's utilization.
            let rho = if cap > 0.0 {
                (total / cap).min(RHO_CLAMP)
            } else {
                0.0
            };
            let drain_ms = if cap > 0.0 {
                backlog_before / cap * 3_600_000.0
            } else {
                0.0
            };
            self.queue_delay_ms[s] = drain_ms + rho / (2.0 * (1.0 - rho)) * self.service_ms;
            let util = if cap > 0.0 {
                (total / cap).min(1.0)
            } else {
                0.0
            };
            self.util_sum += util;
            self.util_samples += 1;
            self.peak_utilization = self.peak_utilization.max(util);
            if self.assumed[s] > 0.0 {
                max_drift =
                    max_drift.max((self.arrivals[s] - self.assumed[s]).abs() / self.assumed[s]);
            }
        }

        // Phase 3: latency-aware spill — route overflow to the nearest
        // alternate site's leftover capacity; what does not fit is dropped.
        for s in 0..sites {
            let total = self.site_total[s];
            if total <= 0.0 {
                self.frac_local[s] = 0.0;
                self.frac_reroute[s] = 0.0;
                self.frac_drop[s] = 0.0;
                continue;
            }
            let spill = self.spill[s];
            // Locally served requests: everything that neither queued nor
            // spilled.  `used` doubles as the fallback's consumed capacity,
            // so read local service from the phase-2 balance instead.
            let local = (total - self.backlog[s] - spill).max(0.0);
            let mut moved = 0.0;
            if spill > 0.0 {
                let f = self.fallback[s];
                if f != usize::MAX {
                    let headroom = (self.capacity_per_hour[f] - self.used[f]).max(0.0);
                    moved = spill.min(headroom);
                    self.used[f] += moved;
                }
            }
            let dropped = spill - moved;
            self.served += local + moved;
            self.rerouted += moved;
            self.dropped += dropped;
            self.frac_local[s] = local / total;
            self.frac_reroute[s] = moved / total;
            self.frac_drop[s] = dropped / total;
        }

        // Phase 4: fold this hour's batches into the latency histogram,
        // weighting each app's batch by its site's serve/spill fractions.
        for (app, &site) in self.app_site.iter().enumerate() {
            if site == usize::MAX {
                continue;
            }
            let count = self.epoch_counts[app * hours + hour] as f64;
            if count <= 0.0 {
                continue;
            }
            let base = self.app_base_ms[app];
            let local = count * self.frac_local[site];
            if local > 0.0 {
                let ms = base + self.queue_delay_ms[site];
                hist_add(&mut self.hist, ms, local);
            }
            let remote = count * self.frac_reroute[site];
            if remote > 0.0 {
                let f = self.fallback[site];
                let fallback_delay = if f != usize::MAX {
                    self.queue_delay_ms[f]
                } else {
                    0.0
                };
                let ms = base + self.fallback_penalty_ms[site] + fallback_delay;
                hist_add(&mut self.hist, ms, remote);
            }
        }

        self.hours += 1;
        max_drift
    }

    /// Finalizes the run: drains what is still queued as served (the year
    /// ends; queued work completes) and reads the percentiles.
    pub fn finish(mut self) -> ServingMetrics {
        let trailing: f64 = self.backlog.iter().sum();
        self.served += trailing;
        let (p50, p95, p99) = percentiles(&self.hist);
        ServingMetrics {
            requests_total: self.requests_total,
            served: self.served,
            rerouted: self.rerouted,
            dropped: self.dropped,
            p50_ms: p50,
            p95_ms: p95,
            p99_ms: p99,
            mean_utilization: if self.util_samples == 0 {
                0.0
            } else {
                self.util_sum / self.util_samples as f64
            },
            peak_utilization: self.peak_utilization,
            hours: self.hours,
            online_replacements: self.online_replacements,
        }
    }
}

fn hist_add(hist: &mut [f64], ms: f64, weight: f64) {
    // Latencies are sums of propagation, queueing and penalty terms — all
    // finite and non-negative by construction.
    debug_assert!(
        ms.is_finite() && ms >= 0.0,
        "latency sample must be finite and non-negative, got {ms}"
    );
    // Clamp explicitly instead of relying on the float→usize cast: a
    // negative or NaN value casts to bin 0 silently (understating the
    // tail), and +∞ saturates only by accident of the cast's semantics.
    let bin = if ms.is_finite() && ms > 0.0 {
        ((ms / BIN_MS) as usize).min(hist.len() - 1)
    } else if ms == f64::INFINITY {
        hist.len() - 1
    } else {
        // NaN, negative, or zero: the first bin is the only honest slot.
        0
    };
    hist[bin] += weight;
}

fn percentiles(hist: &[f64]) -> (f64, f64, f64) {
    let total: f64 = hist.iter().sum();
    if total <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let mut targets = [0.50 * total, 0.95 * total, 0.99 * total];
    let mut out = [0.0f64; 3];
    let mut cumulative = 0.0;
    let mut next = 0;
    for (bin, weight) in hist.iter().enumerate() {
        cumulative += weight;
        while next < 3 && cumulative >= targets[next] {
            out[next] = (bin as f64 + 0.5) * BIN_MS;
            next += 1;
        }
        if next == 3 {
            break;
        }
    }
    // Degenerate float accumulation: fill any unreached targets with the max.
    while next < 3 {
        out[next] = (hist.len() as f64 - 0.5) * BIN_MS;
        targets[next] = 0.0;
        next += 1;
    }
    (out[0], out[1], out[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbonedge_geo::Coordinates;
    use carbonedge_workload::ArrivalProcess;

    #[test]
    fn hist_add_clamps_pathological_latencies() {
        let mut hist = vec![0.0f64; 8];
        hist_add(&mut hist, 0.0, 1.0);
        hist_add(&mut hist, BIN_MS * 2.5, 1.0);
        hist_add(&mut hist, BIN_MS * 1e9, 1.0); // far past the last bin
        assert_eq!(hist[0], 1.0);
        assert_eq!(hist[2], 1.0);
        assert_eq!(hist[7], 1.0);

        // Non-finite and negative samples are an upstream bug: loudly
        // rejected in debug builds, explicitly clamped in release so the
        // percentiles never read memory-safety-adjacent garbage bins.
        for (ms, bin) in [(f64::NAN, 0usize), (-3.0, 0), (f64::INFINITY, 7)] {
            let outcome = std::panic::catch_unwind(|| {
                let mut h = vec![0.0f64; 8];
                hist_add(&mut h, ms, 1.0);
                h
            });
            if cfg!(debug_assertions) {
                assert!(outcome.is_err(), "debug build must assert on {ms}");
            } else {
                let h = outcome.unwrap();
                assert_eq!(h[bin], 1.0, "sample {ms} must land in bin {bin}");
            }
        }
    }

    fn two_site_engine(rate_rps: f64, servers: usize) -> ServingEngine {
        let locations = vec![Coordinates::new(48.0, 2.0), Coordinates::new(50.0, 8.0)];
        let streams = vec![
            RequestStream::new(0, 0, rate_rps, ArrivalProcess::diurnal_bursty(), 42),
            RequestStream::new(1, 1, rate_rps, ArrivalProcess::diurnal_bursty(), 42),
        ];
        ServingEngine::new(
            streams,
            &locations,
            &[servers; 2],
            76.9,
            13.0,
            &LatencyModel::deterministic(),
        )
    }

    fn identity_assignment(engine: &mut ServingEngine) {
        let server_site = vec![0, 1];
        engine.set_assignment(&[Some(0), Some(1)], &server_site, |_, server| {
            if server == 0 {
                1.0
            } else {
                2.0
            }
        });
    }

    #[test]
    fn lightly_loaded_engine_serves_everything() {
        let mut engine = two_site_engine(15.0, 4);
        engine.load_epoch(0, 240);
        identity_assignment(&mut engine);
        let (served_hours, fired) = engine.serve_hours(0, 240, f64::INFINITY, 0);
        assert_eq!((served_hours, fired), (240, false));
        let m = engine.finish();
        assert_eq!(m.hours, 240);
        assert!(m.requests_total > 0);
        assert_eq!(m.dropped, 0.0, "4 servers at 15 rps never saturate");
        assert!((m.served - m.requests_total as f64).abs() < 1e-6);
        assert!(m.p50_ms > 13.0, "latency includes service time");
        assert!(m.p50_ms <= m.p95_ms && m.p95_ms <= m.p99_ms);
    }

    #[test]
    fn overload_drops_requests_and_inflates_tails() {
        // 200 rps against one 76.9 rps server: persistent overload.
        let mut engine = two_site_engine(200.0, 1);
        engine.load_epoch(0, 96);
        identity_assignment(&mut engine);
        engine.serve_hours(0, 96, f64::INFINITY, 0);
        let m = engine.finish();
        assert!(m.dropped > 0.0, "admission control must reject overflow");
        assert!(m.drop_percent() > 10.0, "drop {}", m.drop_percent());
        assert!(m.peak_utilization >= 0.999);
        // Persistent saturation drives every served batch to the maximal
        // queueing delay, so the tails merge at the top of the histogram.
        assert!(m.p99_ms >= m.p50_ms);
        assert!(m.p99_ms > 100.0, "saturated queues must show heavy tails");
    }

    #[test]
    fn serving_conserves_requests() {
        let mut engine = two_site_engine(90.0, 1);
        engine.load_epoch(100, 336);
        identity_assignment(&mut engine);
        engine.serve_hours(0, 336, f64::INFINITY, 0);
        let m = engine.finish();
        let accounted = m.served + m.dropped;
        assert!(
            (accounted - m.requests_total as f64).abs() < 1e-6 * m.requests_total as f64 + 1e-6,
            "served {} + dropped {} vs total {}",
            m.served,
            m.dropped,
            m.requests_total
        );
    }

    #[test]
    fn drift_trigger_fires_only_past_the_threshold() {
        let mut engine = two_site_engine(60.0, 1);
        engine.load_epoch(0, 168);
        identity_assignment(&mut engine);
        // Impossible threshold: never fires.
        let (hours, fired) = engine.serve_hours(0, 168, 1e12, 0);
        assert_eq!((hours, fired), (168, false));
        // Tiny threshold: the first checked hour past the cooldown fires
        // (diurnal swing alone exceeds 1%).
        let mut engine = two_site_engine(60.0, 1);
        engine.load_epoch(0, 168);
        identity_assignment(&mut engine);
        let (hours, fired) = engine.serve_hours(0, 168, 0.01, 6);
        assert!(fired, "1% threshold must fire against a 35% diurnal swing");
        assert!(hours > 6 && hours <= 168, "fired after {hours} hours");
        let m = engine.finish();
        assert_eq!(m.online_replacements, 1);
    }

    #[test]
    fn unplaced_apps_count_as_dropped() {
        let mut engine = two_site_engine(10.0, 4);
        engine.load_epoch(0, 24);
        let server_site = vec![0, 1];
        engine.set_assignment(&[Some(0), None], &server_site, |_, _| 1.0);
        engine.serve_hours(0, 24, f64::INFINITY, 0);
        let m = engine.finish();
        assert!(m.dropped > 0.0);
        assert!((m.dropped + m.served - m.requests_total as f64).abs() < 1e-6);
    }

    #[test]
    fn serving_mode_labels_are_stable() {
        assert_eq!(ServingMode::default(), ServingMode::Aggregate);
        assert_eq!(ServingMode::Aggregate.label(), "agg");
        assert_eq!(ServingMode::EventLevel.label(), "events");
        assert_eq!(ServingMode::OnlineReplace.label(), "events-online");
        assert!(!ServingMode::Aggregate.is_event_level());
        assert!(ServingMode::OnlineReplace.is_event_level());
        assert_eq!(ServingMode::ALL.len(), 3);
    }
}
