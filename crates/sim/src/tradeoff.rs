//! Carbon–energy trade-off sweep — Figure 16.
//!
//! The multi-objective policy of Eq. 8 interpolates between pure carbon
//! minimization (α = 0, the vanilla CarbonEdge policy) and pure energy
//! minimization (α = 1, the Energy-aware policy).  The paper sweeps α at
//! low and high cluster utilization and shows that a small α retains most of
//! the carbon savings while recovering much of the energy overhead.

use crate::metrics::PolicyOutcome;
use carbonedge_core::{IncrementalPlacer, PlacementPolicy, PlacementProblem, ServerSnapshot};
use carbonedge_datasets::{MesoscaleRegion, StudyRegion, ZoneCatalog};
use carbonedge_grid::HourOfYear;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};

/// One point of the α sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// The energy weight α.
    pub alpha: f64,
    /// Outcome of the placement at this α.
    pub outcome: PolicyOutcome,
}

/// Configuration and results of an α sweep.
#[derive(Debug, Clone)]
pub struct TradeoffSweep {
    /// Whether this is the high-utilization scenario.
    pub high_utilization: bool,
    /// The sweep points, in increasing α.
    pub points: Vec<TradeoffPoint>,
    /// Outcome of the Latency-aware baseline on the same scenario.
    pub latency_aware: PolicyOutcome,
}

impl TradeoffSweep {
    /// Runs the sweep over `alphas` for the low- or high-utilization
    /// scenario of Figure 16.
    ///
    /// Both scenarios use the Central-EU region with heterogeneous servers;
    /// the high-utilization scenario multiplies the offered load.
    pub fn run(high_utilization: bool, alphas: &[f64]) -> TradeoffSweep {
        let catalog = ZoneCatalog::worldwide();
        let region = MesoscaleRegion::resolve(StudyRegion::CentralEu, &catalog);
        let traces = catalog.generate_traces(42);
        let now = HourOfYear::new(12 * 24);
        let latency_model = LatencyModel::deterministic();

        // Heterogeneous servers: one of each device type per site.
        let mut servers = Vec::new();
        for (site_idx, (zone, (_, loc))) in
            region.zones.iter().zip(region.members.iter()).enumerate()
        {
            for device in [DeviceKind::OrinNano, DeviceKind::A2, DeviceKind::Gtx1080] {
                servers.push(
                    ServerSnapshot::new(servers.len(), site_idx, *zone, device, *loc)
                        .with_carbon_intensity(traces[zone.index()].at(now)),
                );
            }
        }
        // Low utilization: 1 app per model per site at 5 rps.
        // High utilization: 4 apps per model per site at 15 rps.
        let (apps_per_model, rate) = if high_utilization {
            (4, 15.0)
        } else {
            (1, 5.0)
        };
        let mut apps = Vec::new();
        for (_, loc) in &region.members {
            for model in ModelKind::GPU_MODELS {
                for _ in 0..apps_per_model {
                    apps.push(Application::new(
                        AppId(apps.len()),
                        model,
                        rate,
                        20.0,
                        *loc,
                        0,
                    ));
                }
            }
        }

        let place = |policy: PlacementPolicy| -> PolicyOutcome {
            let problem = PlacementProblem::new(servers.clone(), apps.clone(), 1.0)
                .with_latency_model(latency_model.clone());
            let decision = IncrementalPlacer::new(policy)
                .heuristic_only()
                .place(&problem)
                .expect("tradeoff placement feasible");
            PolicyOutcome {
                carbon_g: decision.total_carbon_g,
                energy_j: decision.total_energy_j,
                mean_latency_ms: decision.mean_latency_ms,
                placed_apps: apps.len() - decision.unplaced.len(),
            }
        };

        let points = alphas
            .iter()
            .map(|alpha| TradeoffPoint {
                alpha: *alpha,
                outcome: place(PlacementPolicy::CarbonEnergyTradeoff { alpha: *alpha }),
            })
            .collect();
        let latency_aware = place(PlacementPolicy::LatencyAware);

        TradeoffSweep {
            high_utilization,
            points,
            latency_aware,
        }
    }

    /// The default α grid of Figure 16 (0.0 to 1.0 in steps of 0.1).
    pub fn default_alphas() -> Vec<f64> {
        (0..=10).map(|k| k as f64 / 10.0).collect()
    }

    /// Carbon savings (vs. Latency-aware) retained at a given α, as a
    /// fraction of the savings at α = 0.
    pub fn retained_savings_fraction(&self, alpha: f64) -> Option<f64> {
        let at = |a: f64| {
            self.points
                .iter()
                .find(|p| (p.alpha - a).abs() < 1e-9)
                .map(|p| p.outcome.carbon_g)
        };
        let full = at(0.0)?;
        let here = at(alpha)?;
        let baseline = self.latency_aware.carbon_g;
        let full_savings = baseline - full;
        if full_savings <= 0.0 {
            return Some(1.0);
        }
        Some(((baseline - here) / full_savings).clamp(0.0, 1.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carbon_rises_and_energy_falls_with_alpha() {
        // Figure 16: moving α from 0 to 1 trades carbon for energy.
        let sweep = TradeoffSweep::run(false, &[0.0, 0.5, 1.0]);
        let first = sweep.points.first().unwrap().outcome;
        let last = sweep.points.last().unwrap().outcome;
        assert!(
            last.carbon_g >= first.carbon_g - 1e-9,
            "carbon should not fall as α grows"
        );
        assert!(
            last.energy_j <= first.energy_j + 1e-9,
            "energy should not rise as α grows"
        );
    }

    #[test]
    fn alpha_zero_saves_most_carbon_versus_latency_aware() {
        // Figure 16a: at α = 0 the low-utilization scenario reaches ~98%
        // savings versus Latency-aware.
        let sweep = TradeoffSweep::run(false, &[0.0]);
        let ce = sweep.points[0].outcome.carbon_g;
        let la = sweep.latency_aware.carbon_g;
        let savings = (1.0 - ce / la) * 100.0;
        assert!(savings > 50.0, "savings {savings}");
    }

    #[test]
    fn small_alpha_retains_most_savings() {
        // Figure 16a: α = 0.1 retains ~97.5% of the carbon savings while
        // cutting energy use substantially.
        let sweep = TradeoffSweep::run(false, &[0.0, 0.1, 1.0]);
        let retained = sweep.retained_savings_fraction(0.1).unwrap();
        assert!(retained > 0.6, "retained {retained}");
        let e0 = sweep.points[0].outcome.energy_j;
        let e01 = sweep.points[1].outcome.energy_j;
        assert!(e01 <= e0 + 1e-9);
    }

    #[test]
    fn high_utilization_scales_magnitudes_up() {
        // Figure 16b: the high-utilization scenario has much larger carbon
        // and energy magnitudes.
        let low = TradeoffSweep::run(false, &[0.0]);
        let high = TradeoffSweep::run(true, &[0.0]);
        assert!(high.points[0].outcome.carbon_g > low.points[0].outcome.carbon_g * 3.0);
        assert!(high.points[0].outcome.energy_j > low.points[0].outcome.energy_j * 3.0);
        assert!(high.high_utilization);
    }

    #[test]
    fn default_alpha_grid_matches_figure() {
        let alphas = TradeoffSweep::default_alphas();
        assert_eq!(alphas.len(), 11);
        assert_eq!(alphas[0], 0.0);
        assert_eq!(*alphas.last().unwrap(), 1.0);
    }

    #[test]
    fn retained_fraction_handles_missing_alpha() {
        let sweep = TradeoffSweep::run(false, &[0.0, 1.0]);
        assert!(sweep.retained_savings_fraction(0.3).is_none());
        assert!(sweep.retained_savings_fraction(1.0).is_some());
    }
}
