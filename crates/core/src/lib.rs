#![forbid(unsafe_code)]
//! CarbonEdge: carbon-aware placement for mesoscale edge data centers.
//!
//! This crate implements the paper's primary contribution (Section 4): the
//! carbon-aware placement problem with latency constraints, the placement
//! policies evaluated in Section 6, and the incremental placement algorithm
//! (Algorithm 1).
//!
//! * [`problem`] — the placement problem: server snapshots, application
//!   batches, latency/energy/carbon inputs (Table 2) and the carbon
//!   objective (Eq. 6) with its multi-objective extension (Eq. 8);
//! * [`policy`] — the placement policies: `CarbonEdge` (carbon-aware),
//!   `Latency-aware`, `Energy-aware`, `Intensity-aware`, and the
//!   carbon–energy trade-off policy;
//! * [`algorithm`] — the incremental placement algorithm that filters
//!   latency-feasible servers, solves the optimization, and commits the
//!   resulting placement and power-state decisions;
//! * [`diff`] — assignment diffs (moves / stays / evictions), the shared
//!   vocabulary of the stateful re-placement pipeline's churn accounting.
//!
//! # Quick example
//!
//! ```
//! use carbonedge_core::prelude::*;
//! use carbonedge_geo::Coordinates;
//! use carbonedge_grid::ZoneId;
//! use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};
//!
//! // Two single-server edge sites: a dirty zone and a green zone 100 km away.
//! let servers = vec![
//!     ServerSnapshot::new(0, 0, ZoneId(0), DeviceKind::A2, Coordinates::new(48.1, 11.6))
//!         .with_carbon_intensity(550.0),
//!     ServerSnapshot::new(1, 1, ZoneId(1), DeviceKind::A2, Coordinates::new(46.9, 7.4))
//!         .with_carbon_intensity(45.0),
//! ];
//! let app = Application::new(
//!     AppId(0), ModelKind::ResNet50, 20.0, 30.0, Coordinates::new(48.1, 11.6), 0,
//! );
//! let problem = PlacementProblem::new(servers, vec![app], 1.0);
//! let decision = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
//!     .place(&problem)
//!     .expect("feasible placement");
//! // The carbon-aware policy shifts the app to the green zone.
//! assert_eq!(decision.assignment[0], Some(1));
//! ```

pub mod algorithm;
pub mod diff;
pub mod policy;
pub mod problem;

pub use algorithm::{IncrementalPlacer, PlacementDecision, PlacementError, PlacementModel};
pub use diff::AssignmentDiff;
pub use policy::PlacementPolicy;
pub use problem::{
    MigrationCost, MigrationCostLevel, PairLatencyCache, PlacementProblem, PlacementState,
    ServerSnapshot,
};

/// Convenient re-exports of the types needed to drive a placement.
pub mod prelude {
    pub use crate::algorithm::{
        IncrementalPlacer, PlacementDecision, PlacementError, PlacementModel,
    };
    pub use crate::diff::AssignmentDiff;
    pub use crate::policy::PlacementPolicy;
    pub use crate::problem::{
        MigrationCost, MigrationCostLevel, PlacementProblem, PlacementState, ServerSnapshot,
    };
}
