//! The carbon-aware placement problem (Table 2, Eqs. 1–6), plus the
//! stateful extension: an incumbent assignment with per-application
//! migration costs, so re-placement decisions weigh forecast carbon savings
//! against the churn of actually moving a service between edge sites.

use carbonedge_geo::Coordinates;
use carbonedge_grid::ZoneId;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{Application, DeviceKind, ModelKind, ResourceDemand, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A snapshot of one edge server at placement time: everything the placement
/// service needs to know about it (Table 2 inputs `C_j^k`, `Ī_j`, `B_j`,
/// `y_j^curr`), decoupled from the live cluster state so the optimizer can
/// run against the simulator, the prototype, or a synthetic scenario alike.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSnapshot {
    /// Global server id.
    pub id: usize,
    /// Edge site (data center) index the server belongs to.
    pub site: usize,
    /// Carbon zone powering the server.
    pub zone: ZoneId,
    /// Device type installed.
    pub device: DeviceKind,
    /// Server location (its site's location).
    pub location: Coordinates,
    /// Remaining resource capacity `C_j^k`.
    pub available: ResourceDemand,
    /// Base power when on, in watts (`B_j`).
    pub base_power_w: f64,
    /// Whether the server is currently powered on (`y_j^curr`).
    pub powered_on: bool,
    /// Average forecast carbon intensity `Ī_j` in g·CO2eq/kWh.
    pub carbon_intensity: f64,
}

impl ServerSnapshot {
    /// Creates a powered-on snapshot with full device capacity and the
    /// device's base power; carbon intensity defaults to 400 g·CO2eq/kWh
    /// until overridden.
    pub fn new(
        id: usize,
        site: usize,
        zone: ZoneId,
        device: DeviceKind,
        location: Coordinates,
    ) -> Self {
        Self {
            id,
            site,
            zone,
            device,
            location,
            available: ResourceDemand::new(device.compute_slots(), device.memory_mb(), 1000.0),
            base_power_w: device.base_power_w(),
            powered_on: true,
            carbon_intensity: 400.0,
        }
    }

    /// Sets the forecast carbon intensity `Ī_j`.
    pub fn with_carbon_intensity(mut self, intensity: f64) -> Self {
        self.carbon_intensity = intensity.max(0.0);
        self
    }

    /// Sets the available capacity.
    pub fn with_available(mut self, available: ResourceDemand) -> Self {
        self.available = available;
        self
    }

    /// Sets the current power state.
    pub fn with_powered_on(mut self, on: bool) -> Self {
        self.powered_on = on;
        self
    }
}

/// The carbon cost of moving one application off its incumbent server:
/// transferring its state (dominated by the model image) across the WAN,
/// plus a downtime penalty for the restart window.  Both are in grams
/// CO2-equivalent so they are directly commensurate with the operational
/// carbon objective (Eq. 6).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Carbon of transferring the application's data between sites, grams.
    pub data_transfer_g: f64,
    /// Carbon-equivalent penalty of the migration downtime window, grams.
    pub downtime_g: f64,
}

impl MigrationCost {
    /// A zero-cost migration (the stateless legacy behavior).
    pub fn free() -> Self {
        Self::default()
    }

    /// Creates a migration cost from its components, clamped non-negative.
    pub fn new(data_transfer_g: f64, downtime_g: f64) -> Self {
        Self {
            data_transfer_g: data_transfer_g.max(0.0),
            downtime_g: downtime_g.max(0.0),
        }
    }

    /// Total carbon charged per move, grams.
    pub fn total_g(&self) -> f64 {
        self.data_transfer_g + self.downtime_g
    }

    /// Whether moving is free (total cost exactly zero).
    pub fn is_free(&self) -> bool {
        self.total_g() == 0.0
    }
}

/// WAN transfer energy per gigabyte moved between edge sites, kWh/GB (a
/// commonly cited wired-network figure; see the "Calibrating a migration
/// cost" recipe in the README).
pub const TRANSFER_KWH_PER_GB: f64 = 0.06;
/// Grid intensity used to price migration energy, g CO2eq/kWh (a world
/// average — migration traffic crosses zones, so no single zone's intensity
/// applies).
pub const MIGRATION_GRID_G_PER_KWH: f64 = 475.0;
/// Downtime window of one migration, seconds (drain + image load + warmup).
pub const MIGRATION_DOWNTIME_S: f64 = 30.0;

/// Calibration presets for per-application migration costs, used by the
/// simulator and as a sweep axis.  `Free` reproduces the stateless legacy
/// behavior bit for bit; `Paper` derives the cost from the workload's model
/// size and device (the profiling data of Figure 7); `Heavy` scales the
/// paper calibration 25×, the regime where churn dominates mesoscale
/// savings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationCostLevel {
    /// Moves cost nothing (the stateless legacy behavior).
    Free,
    /// Paper-calibrated: model-image transfer + a 30 s downtime window.
    Paper,
    /// 25× the paper calibration: churn-dominated placement.
    Heavy,
}

impl MigrationCostLevel {
    /// All levels in increasing cost order.
    pub const ALL: [MigrationCostLevel; 3] = [
        MigrationCostLevel::Free,
        MigrationCostLevel::Paper,
        MigrationCostLevel::Heavy,
    ];

    /// Display label used in reports and cell labels.
    pub fn label(&self) -> &'static str {
        match self {
            MigrationCostLevel::Free => "mig-free",
            MigrationCostLevel::Paper => "mig-paper",
            MigrationCostLevel::Heavy => "mig-heavy",
        }
    }

    /// The multiplier applied to the paper calibration.
    pub fn factor(&self) -> f64 {
        match self {
            MigrationCostLevel::Free => 0.0,
            MigrationCostLevel::Paper => 1.0,
            MigrationCostLevel::Heavy => 25.0,
        }
    }

    /// The migration cost of one application serving `model` on `device` at
    /// this level.  The data-transfer term prices moving the model image
    /// (the profiled memory footprint) across the WAN; the downtime term
    /// prices the device's base power over the restart window.  Unprofiled
    /// combinations fall back to a nominal 512 MB image.
    pub fn cost_for(&self, model: ModelKind, device: DeviceKind) -> MigrationCost {
        if *self == MigrationCostLevel::Free {
            return MigrationCost::free();
        }
        let image_mb = WorkloadProfile::lookup(model, device)
            .map(|p| p.memory_mb)
            .unwrap_or(512.0);
        let transfer_g =
            image_mb / 1024.0 * TRANSFER_KWH_PER_GB * MIGRATION_GRID_G_PER_KWH * self.factor();
        let downtime_g = device.base_power_w() * MIGRATION_DOWNTIME_S / 3.6e6
            * MIGRATION_GRID_G_PER_KWH
            * self.factor();
        MigrationCost::new(transfer_g, downtime_g)
    }
}

/// The incumbent state a stateful placement carries from the previous epoch:
/// where each application currently runs and what moving it would cost.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlacementState {
    /// `previous[i]`: server index currently hosting application `i`
    /// (`None` for a new arrival).
    pub previous: Vec<Option<usize>>,
    /// `migration[i]`: the cost of moving application `i` off its incumbent
    /// server.  Must be the same length as `previous`.
    pub migration: Vec<MigrationCost>,
}

impl PlacementState {
    /// Creates a state; panics if the vectors disagree in length.
    pub fn new(previous: Vec<Option<usize>>, migration: Vec<MigrationCost>) -> Self {
        assert_eq!(
            previous.len(),
            migration.len(),
            "placement state vectors must align per application"
        );
        Self {
            previous,
            migration,
        }
    }

    /// A state where every incumbent moves for free (useful to track churn
    /// without influencing decisions).
    pub fn free(previous: Vec<Option<usize>>) -> Self {
        let migration = vec![MigrationCost::free(); previous.len()];
        Self {
            previous,
            migration,
        }
    }

    /// Whether every migration cost is exactly zero, in which case the
    /// stateful problem optimizes to the same decisions as the stateless one.
    pub fn is_free(&self) -> bool {
        self.migration.iter().all(|m| m.is_free())
    }

    /// Total migration carbon of an assignment against this state: the sum
    /// of `migration[i].total_g()` over applications placed on a different
    /// server than their incumbent, or torn down (evicted) entirely.
    pub fn migration_carbon_g(&self, assignment: &[Option<usize>]) -> f64 {
        let mut total = 0.0;
        for (i, prev) in self.previous.iter().enumerate() {
            let Some(prev) = prev else { continue };
            match assignment.get(i).copied().flatten() {
                Some(next) if next == *prev => {}
                _ => total += self.migration[i].total_g(),
            }
        }
        total
    }
}

/// Precomputed pair round-trip latencies for problems whose applications
/// and servers originate from a small set of distinct locations (e.g. edge
/// sites hosting several servers each): `rtt_ms[app_class × server_class]`
/// holds the matrix, and the class vectors map each application/server to
/// its location class.
///
/// The cached values must be produced by the *same*
/// [`LatencyModel::round_trip_ms`] call the uncached
/// [`PlacementProblem::latency_ms`] would make, so every downstream
/// comparison (latency feasibility, policy costs, mean latency) is
/// bit-identical with and without the cache — the property the sweep's
/// cached-versus-cold differential test pins.
#[derive(Debug, Clone)]
pub struct PairLatencyCache {
    app_class: Vec<u32>,
    server_class: Vec<u32>,
    rtt_ms: Vec<f64>,
    server_classes: usize,
}

impl PairLatencyCache {
    /// Creates a cache; panics if the matrix shape is inconsistent with the
    /// class vectors.
    pub fn new(
        app_class: Vec<u32>,
        server_class: Vec<u32>,
        rtt_ms: Vec<f64>,
        server_classes: usize,
    ) -> Self {
        let app_classes = app_class.iter().map(|c| *c as usize + 1).max().unwrap_or(0);
        assert!(
            server_class.iter().all(|c| (*c as usize) < server_classes),
            "server class out of range"
        );
        assert!(
            rtt_ms.len() >= app_classes * server_classes,
            "latency matrix too small for the class vectors"
        );
        Self {
            app_class,
            server_class,
            rtt_ms,
            server_classes,
        }
    }

    /// The cached round-trip latency of an `(app, server)` pair, ms.
    #[inline]
    pub fn rtt_ms(&self, app: usize, server: usize) -> f64 {
        self.rtt_ms[self.app_class[app] as usize * self.server_classes
            + self.server_class[server] as usize]
    }

    /// Whether the cache covers the given problem shape.
    pub fn covers(&self, apps: usize, servers: usize) -> bool {
        self.app_class.len() == apps && self.server_class.len() == servers
    }
}

/// One instance of the incremental placement problem: a batch of arriving
/// applications, the current server states, and the epoch length over which
/// operational energy is accounted.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// Server snapshots `S`.
    pub servers: Vec<ServerSnapshot>,
    /// Arriving applications `A`.
    pub apps: Vec<Application>,
    /// Placement epoch length in hours (energy `E_ij` is accounted over one
    /// epoch; the prototype batches deployments every few minutes, the
    /// simulator uses one hour).
    pub epoch_hours: f64,
    /// Latency model used to compute `L_ij` between an application's origin
    /// and a candidate server.
    pub latency_model: LatencyModel,
    /// Incumbent assignment and migration costs from the previous epoch;
    /// `None` for a stateless (first-decision) problem.
    pub state: Option<PlacementState>,
    /// Optional precomputed pair latencies (see [`PairLatencyCache`]);
    /// `None` computes every lookup from the latency model.
    pub latency_cache: Option<Arc<PairLatencyCache>>,
}

impl PlacementProblem {
    /// Creates a problem with the default latency model.
    pub fn new(servers: Vec<ServerSnapshot>, apps: Vec<Application>, epoch_hours: f64) -> Self {
        Self {
            servers,
            apps,
            epoch_hours: epoch_hours.max(1e-6),
            latency_model: LatencyModel::default(),
            state: None,
            latency_cache: None,
        }
    }

    /// Overrides the latency model.
    pub fn with_latency_model(mut self, model: LatencyModel) -> Self {
        self.latency_model = model;
        self
    }

    /// Attaches a precomputed pair-latency cache. The cache must have been
    /// built from this problem's latency model and app/server locations; a
    /// cache whose shape does not cover the problem is ignored.
    pub fn with_latency_cache(mut self, cache: Arc<PairLatencyCache>) -> Self {
        if cache.covers(self.apps.len(), self.servers.len()) {
            self.latency_cache = Some(cache);
        }
        self
    }

    /// Attaches the incumbent state from the previous epoch, making this a
    /// stateful (delta) placement problem.
    pub fn with_state(mut self, state: PlacementState) -> Self {
        self.state = Some(state);
        self
    }

    /// Migration carbon of an assignment against the attached state, grams
    /// (zero for stateless problems).
    pub fn migration_carbon_g(&self, assignment: &[Option<usize>]) -> f64 {
        self.state
            .as_ref()
            .map_or(0.0, |s| s.migration_carbon_g(assignment))
    }

    /// Round-trip latency `L_ij` between application `i` and server `j`, ms.
    pub fn latency_ms(&self, app: usize, server: usize) -> f64 {
        if let Some(cache) = &self.latency_cache {
            return cache.rtt_ms(app, server);
        }
        self.latency_model
            .round_trip_ms(self.apps[app].origin, self.servers[server].location)
    }

    /// Whether the `(app, server)` pair satisfies the latency constraint
    /// (Eq. 2) and hardware compatibility.
    pub fn is_feasible_pair(&self, app: usize, server: usize) -> bool {
        let a = &self.apps[app];
        let s = &self.servers[server];
        a.can_run_on(s.device) && self.latency_ms(app, server) <= a.latency_slo_ms + 1e-9
    }

    /// Resource demand `R_ij` of application `i` on server `j`, when the
    /// pair is hardware-compatible.
    pub fn demand(&self, app: usize, server: usize) -> Option<ResourceDemand> {
        self.apps[app].demand_on(self.servers[server].device)
    }

    /// Operational energy `E_ij` of application `i` on server `j` over one
    /// placement epoch, in joules.
    pub fn energy_j(&self, app: usize, server: usize) -> Option<f64> {
        self.apps[app]
            .energy_on(self.servers[server].device)
            .map(|per_hour| per_hour * self.epoch_hours)
    }

    /// Operational carbon of application `i` on server `j` over one epoch,
    /// in grams CO2-equivalent (the first term of Eq. 6 for one pair).
    pub fn operational_carbon_g(&self, app: usize, server: usize) -> Option<f64> {
        let energy = self.energy_j(app, server)?;
        Some(energy / 3.6e6 * self.servers[server].carbon_intensity)
    }

    /// Activation energy of server `j` over one epoch (its base power for
    /// the epoch), in joules.
    pub fn activation_energy_j(&self, server: usize) -> f64 {
        self.servers[server].base_power_w * self.epoch_hours * 3600.0
    }

    /// Activation carbon of server `j` (the second term of Eq. 6 for one
    /// newly-activated server), in grams.
    pub fn activation_carbon_g(&self, server: usize) -> f64 {
        self.activation_energy_j(server) / 3.6e6 * self.servers[server].carbon_intensity
    }

    /// Total carbon (Eq. 6) of a full assignment: operational carbon of every
    /// placed application plus activation carbon of every newly powered-on
    /// server.  Returns `None` if any assignment refers to an infeasible pair.
    pub fn total_carbon_g(&self, assignment: &[Option<usize>]) -> Option<f64> {
        let mut total = 0.0;
        let mut newly_on = vec![false; self.servers.len()];
        for (i, a) in assignment.iter().enumerate() {
            let Some(j) = a else { continue };
            total += self.operational_carbon_g(i, *j)?;
            if !self.servers[*j].powered_on {
                newly_on[*j] = true;
            }
        }
        for (j, on) in newly_on.iter().enumerate() {
            if *on {
                total += self.activation_carbon_g(j);
            }
        }
        Some(total)
    }

    /// Total energy of a full assignment in joules (operational energy of
    /// placed applications plus base energy of newly activated servers).
    pub fn total_energy_j(&self, assignment: &[Option<usize>]) -> Option<f64> {
        let mut total = 0.0;
        let mut newly_on = vec![false; self.servers.len()];
        for (i, a) in assignment.iter().enumerate() {
            let Some(j) = a else { continue };
            total += self.energy_j(i, *j)?;
            if !self.servers[*j].powered_on {
                newly_on[*j] = true;
            }
        }
        for (j, on) in newly_on.iter().enumerate() {
            if *on {
                total += self.activation_energy_j(j);
            }
        }
        Some(total)
    }

    /// Mean round-trip latency of the placed applications, in ms.
    pub fn mean_latency_ms(&self, assignment: &[Option<usize>]) -> f64 {
        let placed: Vec<f64> = assignment
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|j| self.latency_ms(i, j)))
            .collect();
        if placed.is_empty() {
            0.0
        } else {
            placed.iter().sum::<f64>() / placed.len() as f64
        }
    }

    /// Number of applications and servers.
    pub fn size(&self) -> (usize, usize) {
        (self.apps.len(), self.servers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbonedge_workload::{AppId, ModelKind};

    fn servers() -> Vec<ServerSnapshot> {
        vec![
            ServerSnapshot::new(
                0,
                0,
                ZoneId(0),
                DeviceKind::A2,
                Coordinates::new(48.14, 11.58),
            )
            .with_carbon_intensity(500.0),
            ServerSnapshot::new(
                1,
                1,
                ZoneId(1),
                DeviceKind::A2,
                Coordinates::new(46.95, 7.45),
            )
            .with_carbon_intensity(50.0)
            .with_powered_on(false),
        ]
    }

    fn app(slo_ms: f64) -> Application {
        Application::new(
            AppId(0),
            ModelKind::ResNet50,
            20.0,
            slo_ms,
            Coordinates::new(48.14, 11.58),
            0,
        )
    }

    #[test]
    fn latency_feasibility_follows_slo() {
        // Munich -> Bern is ~335 km, ~8-12 ms RTT in the deterministic model.
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0)
            .with_latency_model(LatencyModel::deterministic());
        assert!(p.is_feasible_pair(0, 0));
        assert!(p.is_feasible_pair(0, 1));
        let tight = PlacementProblem::new(servers(), vec![app(3.0)], 1.0)
            .with_latency_model(LatencyModel::deterministic());
        assert!(tight.is_feasible_pair(0, 0));
        assert!(!tight.is_feasible_pair(0, 1));
    }

    #[test]
    fn incompatible_hardware_is_infeasible() {
        let cpu_app = Application::new(
            AppId(0),
            ModelKind::SciCpu,
            1.0,
            100.0,
            Coordinates::new(48.0, 11.0),
            0,
        );
        let p = PlacementProblem::new(servers(), vec![cpu_app], 1.0);
        assert!(!p.is_feasible_pair(0, 0));
        assert!(p.demand(0, 0).is_none());
        assert!(p.energy_j(0, 0).is_none());
    }

    #[test]
    fn operational_carbon_scales_with_intensity() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        let dirty = p.operational_carbon_g(0, 0).unwrap();
        let green = p.operational_carbon_g(0, 1).unwrap();
        assert!(
            (dirty / green - 10.0).abs() < 1e-6,
            "ratio {}",
            dirty / green
        );
    }

    #[test]
    fn operational_carbon_scales_with_epoch() {
        let p1 = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        let p2 = PlacementProblem::new(servers(), vec![app(30.0)], 2.0);
        assert!(
            (p2.operational_carbon_g(0, 0).unwrap() / p1.operational_carbon_g(0, 0).unwrap() - 2.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn total_carbon_includes_activation_only_for_newly_on_servers() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        // Placing on server 0 (already on): no activation term.
        let on_dirty = p.total_carbon_g(&[Some(0)]).unwrap();
        assert!((on_dirty - p.operational_carbon_g(0, 0).unwrap()).abs() < 1e-9);
        // Placing on server 1 (currently off): activation term added.
        let on_green = p.total_carbon_g(&[Some(1)]).unwrap();
        let expected = p.operational_carbon_g(0, 1).unwrap() + p.activation_carbon_g(1);
        assert!((on_green - expected).abs() < 1e-9);
    }

    #[test]
    fn unplaced_apps_contribute_nothing() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        assert_eq!(p.total_carbon_g(&[None]).unwrap(), 0.0);
        assert_eq!(p.total_energy_j(&[None]).unwrap(), 0.0);
        assert_eq!(p.mean_latency_ms(&[None]), 0.0);
    }

    #[test]
    fn total_energy_accounts_activation() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        let e = p.total_energy_j(&[Some(1)]).unwrap();
        let expected = p.energy_j(0, 1).unwrap() + p.activation_energy_j(1);
        assert!((e - expected).abs() < 1e-6);
    }

    #[test]
    fn mean_latency_of_local_placement_is_small() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0)
            .with_latency_model(LatencyModel::deterministic());
        assert!(p.mean_latency_ms(&[Some(0)]) < 1.0);
        assert!(p.mean_latency_ms(&[Some(1)]) > 3.0);
    }

    #[test]
    fn size_reports_dimensions() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        assert_eq!(p.size(), (1, 2));
    }

    #[test]
    fn migration_cost_levels_scale_and_order() {
        let free = MigrationCostLevel::Free.cost_for(ModelKind::ResNet50, DeviceKind::A2);
        assert!(free.is_free());
        assert_eq!(free.total_g(), 0.0);
        let paper = MigrationCostLevel::Paper.cost_for(ModelKind::ResNet50, DeviceKind::A2);
        assert!(paper.data_transfer_g > 0.0 && paper.downtime_g > 0.0);
        // ResNet50 on A2 is a 350 MB image: ~9.7 g of transfer carbon.
        assert!(
            paper.data_transfer_g > 5.0 && paper.data_transfer_g < 15.0,
            "transfer {}",
            paper.data_transfer_g
        );
        let heavy = MigrationCostLevel::Heavy.cost_for(ModelKind::ResNet50, DeviceKind::A2);
        assert!((heavy.total_g() / paper.total_g() - 25.0).abs() < 1e-9);
        // Bigger model images cost more to move.
        let yolo = MigrationCostLevel::Paper.cost_for(ModelKind::YoloV4, DeviceKind::A2);
        assert!(yolo.data_transfer_g > paper.data_transfer_g);
        // Unprofiled combinations fall back to the nominal image size.
        let fallback = MigrationCostLevel::Paper.cost_for(ModelKind::SciCpu, DeviceKind::A2);
        assert!(fallback.data_transfer_g > 0.0);
        assert_eq!(MigrationCostLevel::Free.label(), "mig-free");
        assert_eq!(MigrationCostLevel::ALL.len(), 3);
    }

    #[test]
    fn migration_cost_clamps_negative_components() {
        let cost = MigrationCost::new(-1.0, 2.0);
        assert_eq!(cost.data_transfer_g, 0.0);
        assert_eq!(cost.total_g(), 2.0);
    }

    #[test]
    fn placement_state_charges_moves_and_evictions_only() {
        let per_app = MigrationCost::new(3.0, 1.0);
        let state = PlacementState::new(vec![Some(0), Some(1), None], vec![per_app; 3]);
        assert!(!state.is_free());
        // App 0 stays, app 1 moves, app 2 arrives: one move charged.
        assert_eq!(
            state.migration_carbon_g(&[Some(0), Some(2), Some(1)]),
            per_app.total_g()
        );
        // An eviction tears the incumbent down: also charged.
        assert_eq!(
            state.migration_carbon_g(&[Some(0), None, None]),
            per_app.total_g()
        );
        // Everything in place: free.
        assert_eq!(state.migration_carbon_g(&[Some(0), Some(1), None]), 0.0);
        // Free states charge nothing no matter what moves.
        let free = PlacementState::free(vec![Some(0), Some(1), None]);
        assert!(free.is_free());
        assert_eq!(free.migration_carbon_g(&[Some(2), Some(2), Some(2)]), 0.0);
    }

    #[test]
    #[should_panic]
    fn placement_state_rejects_misaligned_vectors() {
        PlacementState::new(vec![Some(0)], vec![]);
    }

    #[test]
    fn problem_migration_carbon_defaults_to_zero_without_state() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        assert_eq!(p.migration_carbon_g(&[Some(1)]), 0.0);
        let stateful = p.with_state(PlacementState::new(
            vec![Some(0)],
            vec![MigrationCost::new(5.0, 0.0)],
        ));
        assert_eq!(stateful.migration_carbon_g(&[Some(1)]), 5.0);
        assert_eq!(stateful.migration_carbon_g(&[Some(0)]), 0.0);
    }

    #[test]
    fn snapshot_builders_clamp_and_set() {
        let s = ServerSnapshot::new(
            0,
            0,
            ZoneId(0),
            DeviceKind::OrinNano,
            Coordinates::new(0.0, 0.0),
        )
        .with_carbon_intensity(-5.0)
        .with_powered_on(false)
        .with_available(ResourceDemand::new(0.5, 100.0, 10.0));
        assert_eq!(s.carbon_intensity, 0.0);
        assert!(!s.powered_on);
        assert_eq!(s.available.compute, 0.5);
        assert_eq!(s.base_power_w, DeviceKind::OrinNano.base_power_w());
    }
}
