//! The carbon-aware placement problem (Table 2, Eqs. 1–6).

use carbonedge_geo::Coordinates;
use carbonedge_grid::ZoneId;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{Application, DeviceKind, ResourceDemand};
use serde::{Deserialize, Serialize};

/// A snapshot of one edge server at placement time: everything the placement
/// service needs to know about it (Table 2 inputs `C_j^k`, `Ī_j`, `B_j`,
/// `y_j^curr`), decoupled from the live cluster state so the optimizer can
/// run against the simulator, the prototype, or a synthetic scenario alike.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSnapshot {
    /// Global server id.
    pub id: usize,
    /// Edge site (data center) index the server belongs to.
    pub site: usize,
    /// Carbon zone powering the server.
    pub zone: ZoneId,
    /// Device type installed.
    pub device: DeviceKind,
    /// Server location (its site's location).
    pub location: Coordinates,
    /// Remaining resource capacity `C_j^k`.
    pub available: ResourceDemand,
    /// Base power when on, in watts (`B_j`).
    pub base_power_w: f64,
    /// Whether the server is currently powered on (`y_j^curr`).
    pub powered_on: bool,
    /// Average forecast carbon intensity `Ī_j` in g·CO2eq/kWh.
    pub carbon_intensity: f64,
}

impl ServerSnapshot {
    /// Creates a powered-on snapshot with full device capacity and the
    /// device's base power; carbon intensity defaults to 400 g·CO2eq/kWh
    /// until overridden.
    pub fn new(
        id: usize,
        site: usize,
        zone: ZoneId,
        device: DeviceKind,
        location: Coordinates,
    ) -> Self {
        Self {
            id,
            site,
            zone,
            device,
            location,
            available: ResourceDemand::new(device.compute_slots(), device.memory_mb(), 1000.0),
            base_power_w: device.base_power_w(),
            powered_on: true,
            carbon_intensity: 400.0,
        }
    }

    /// Sets the forecast carbon intensity `Ī_j`.
    pub fn with_carbon_intensity(mut self, intensity: f64) -> Self {
        self.carbon_intensity = intensity.max(0.0);
        self
    }

    /// Sets the available capacity.
    pub fn with_available(mut self, available: ResourceDemand) -> Self {
        self.available = available;
        self
    }

    /// Sets the current power state.
    pub fn with_powered_on(mut self, on: bool) -> Self {
        self.powered_on = on;
        self
    }
}

/// One instance of the incremental placement problem: a batch of arriving
/// applications, the current server states, and the epoch length over which
/// operational energy is accounted.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    /// Server snapshots `S`.
    pub servers: Vec<ServerSnapshot>,
    /// Arriving applications `A`.
    pub apps: Vec<Application>,
    /// Placement epoch length in hours (energy `E_ij` is accounted over one
    /// epoch; the prototype batches deployments every few minutes, the
    /// simulator uses one hour).
    pub epoch_hours: f64,
    /// Latency model used to compute `L_ij` between an application's origin
    /// and a candidate server.
    pub latency_model: LatencyModel,
}

impl PlacementProblem {
    /// Creates a problem with the default latency model.
    pub fn new(servers: Vec<ServerSnapshot>, apps: Vec<Application>, epoch_hours: f64) -> Self {
        Self {
            servers,
            apps,
            epoch_hours: epoch_hours.max(1e-6),
            latency_model: LatencyModel::default(),
        }
    }

    /// Overrides the latency model.
    pub fn with_latency_model(mut self, model: LatencyModel) -> Self {
        self.latency_model = model;
        self
    }

    /// Round-trip latency `L_ij` between application `i` and server `j`, ms.
    pub fn latency_ms(&self, app: usize, server: usize) -> f64 {
        self.latency_model
            .round_trip_ms(self.apps[app].origin, self.servers[server].location)
    }

    /// Whether the `(app, server)` pair satisfies the latency constraint
    /// (Eq. 2) and hardware compatibility.
    pub fn is_feasible_pair(&self, app: usize, server: usize) -> bool {
        let a = &self.apps[app];
        let s = &self.servers[server];
        a.can_run_on(s.device) && self.latency_ms(app, server) <= a.latency_slo_ms + 1e-9
    }

    /// Resource demand `R_ij` of application `i` on server `j`, when the
    /// pair is hardware-compatible.
    pub fn demand(&self, app: usize, server: usize) -> Option<ResourceDemand> {
        self.apps[app].demand_on(self.servers[server].device)
    }

    /// Operational energy `E_ij` of application `i` on server `j` over one
    /// placement epoch, in joules.
    pub fn energy_j(&self, app: usize, server: usize) -> Option<f64> {
        self.apps[app]
            .energy_on(self.servers[server].device)
            .map(|per_hour| per_hour * self.epoch_hours)
    }

    /// Operational carbon of application `i` on server `j` over one epoch,
    /// in grams CO2-equivalent (the first term of Eq. 6 for one pair).
    pub fn operational_carbon_g(&self, app: usize, server: usize) -> Option<f64> {
        let energy = self.energy_j(app, server)?;
        Some(energy / 3.6e6 * self.servers[server].carbon_intensity)
    }

    /// Activation energy of server `j` over one epoch (its base power for
    /// the epoch), in joules.
    pub fn activation_energy_j(&self, server: usize) -> f64 {
        self.servers[server].base_power_w * self.epoch_hours * 3600.0
    }

    /// Activation carbon of server `j` (the second term of Eq. 6 for one
    /// newly-activated server), in grams.
    pub fn activation_carbon_g(&self, server: usize) -> f64 {
        self.activation_energy_j(server) / 3.6e6 * self.servers[server].carbon_intensity
    }

    /// Total carbon (Eq. 6) of a full assignment: operational carbon of every
    /// placed application plus activation carbon of every newly powered-on
    /// server.  Returns `None` if any assignment refers to an infeasible pair.
    pub fn total_carbon_g(&self, assignment: &[Option<usize>]) -> Option<f64> {
        let mut total = 0.0;
        let mut newly_on = vec![false; self.servers.len()];
        for (i, a) in assignment.iter().enumerate() {
            let Some(j) = a else { continue };
            total += self.operational_carbon_g(i, *j)?;
            if !self.servers[*j].powered_on {
                newly_on[*j] = true;
            }
        }
        for (j, on) in newly_on.iter().enumerate() {
            if *on {
                total += self.activation_carbon_g(j);
            }
        }
        Some(total)
    }

    /// Total energy of a full assignment in joules (operational energy of
    /// placed applications plus base energy of newly activated servers).
    pub fn total_energy_j(&self, assignment: &[Option<usize>]) -> Option<f64> {
        let mut total = 0.0;
        let mut newly_on = vec![false; self.servers.len()];
        for (i, a) in assignment.iter().enumerate() {
            let Some(j) = a else { continue };
            total += self.energy_j(i, *j)?;
            if !self.servers[*j].powered_on {
                newly_on[*j] = true;
            }
        }
        for (j, on) in newly_on.iter().enumerate() {
            if *on {
                total += self.activation_energy_j(j);
            }
        }
        Some(total)
    }

    /// Mean round-trip latency of the placed applications, in ms.
    pub fn mean_latency_ms(&self, assignment: &[Option<usize>]) -> f64 {
        let placed: Vec<f64> = assignment
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.map(|j| self.latency_ms(i, j)))
            .collect();
        if placed.is_empty() {
            0.0
        } else {
            placed.iter().sum::<f64>() / placed.len() as f64
        }
    }

    /// Number of applications and servers.
    pub fn size(&self) -> (usize, usize) {
        (self.apps.len(), self.servers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbonedge_workload::{AppId, ModelKind};

    fn servers() -> Vec<ServerSnapshot> {
        vec![
            ServerSnapshot::new(
                0,
                0,
                ZoneId(0),
                DeviceKind::A2,
                Coordinates::new(48.14, 11.58),
            )
            .with_carbon_intensity(500.0),
            ServerSnapshot::new(
                1,
                1,
                ZoneId(1),
                DeviceKind::A2,
                Coordinates::new(46.95, 7.45),
            )
            .with_carbon_intensity(50.0)
            .with_powered_on(false),
        ]
    }

    fn app(slo_ms: f64) -> Application {
        Application::new(
            AppId(0),
            ModelKind::ResNet50,
            20.0,
            slo_ms,
            Coordinates::new(48.14, 11.58),
            0,
        )
    }

    #[test]
    fn latency_feasibility_follows_slo() {
        // Munich -> Bern is ~335 km, ~8-12 ms RTT in the deterministic model.
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0)
            .with_latency_model(LatencyModel::deterministic());
        assert!(p.is_feasible_pair(0, 0));
        assert!(p.is_feasible_pair(0, 1));
        let tight = PlacementProblem::new(servers(), vec![app(3.0)], 1.0)
            .with_latency_model(LatencyModel::deterministic());
        assert!(tight.is_feasible_pair(0, 0));
        assert!(!tight.is_feasible_pair(0, 1));
    }

    #[test]
    fn incompatible_hardware_is_infeasible() {
        let cpu_app = Application::new(
            AppId(0),
            ModelKind::SciCpu,
            1.0,
            100.0,
            Coordinates::new(48.0, 11.0),
            0,
        );
        let p = PlacementProblem::new(servers(), vec![cpu_app], 1.0);
        assert!(!p.is_feasible_pair(0, 0));
        assert!(p.demand(0, 0).is_none());
        assert!(p.energy_j(0, 0).is_none());
    }

    #[test]
    fn operational_carbon_scales_with_intensity() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        let dirty = p.operational_carbon_g(0, 0).unwrap();
        let green = p.operational_carbon_g(0, 1).unwrap();
        assert!(
            (dirty / green - 10.0).abs() < 1e-6,
            "ratio {}",
            dirty / green
        );
    }

    #[test]
    fn operational_carbon_scales_with_epoch() {
        let p1 = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        let p2 = PlacementProblem::new(servers(), vec![app(30.0)], 2.0);
        assert!(
            (p2.operational_carbon_g(0, 0).unwrap() / p1.operational_carbon_g(0, 0).unwrap() - 2.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn total_carbon_includes_activation_only_for_newly_on_servers() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        // Placing on server 0 (already on): no activation term.
        let on_dirty = p.total_carbon_g(&[Some(0)]).unwrap();
        assert!((on_dirty - p.operational_carbon_g(0, 0).unwrap()).abs() < 1e-9);
        // Placing on server 1 (currently off): activation term added.
        let on_green = p.total_carbon_g(&[Some(1)]).unwrap();
        let expected = p.operational_carbon_g(0, 1).unwrap() + p.activation_carbon_g(1);
        assert!((on_green - expected).abs() < 1e-9);
    }

    #[test]
    fn unplaced_apps_contribute_nothing() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        assert_eq!(p.total_carbon_g(&[None]).unwrap(), 0.0);
        assert_eq!(p.total_energy_j(&[None]).unwrap(), 0.0);
        assert_eq!(p.mean_latency_ms(&[None]), 0.0);
    }

    #[test]
    fn total_energy_accounts_activation() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        let e = p.total_energy_j(&[Some(1)]).unwrap();
        let expected = p.energy_j(0, 1).unwrap() + p.activation_energy_j(1);
        assert!((e - expected).abs() < 1e-6);
    }

    #[test]
    fn mean_latency_of_local_placement_is_small() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0)
            .with_latency_model(LatencyModel::deterministic());
        assert!(p.mean_latency_ms(&[Some(0)]) < 1.0);
        assert!(p.mean_latency_ms(&[Some(1)]) > 3.0);
    }

    #[test]
    fn size_reports_dimensions() {
        let p = PlacementProblem::new(servers(), vec![app(30.0)], 1.0);
        assert_eq!(p.size(), (1, 2));
    }

    #[test]
    fn snapshot_builders_clamp_and_set() {
        let s = ServerSnapshot::new(
            0,
            0,
            ZoneId(0),
            DeviceKind::OrinNano,
            Coordinates::new(0.0, 0.0),
        )
        .with_carbon_intensity(-5.0)
        .with_powered_on(false)
        .with_available(ResourceDemand::new(0.5, 100.0, 10.0));
        assert_eq!(s.carbon_intensity, 0.0);
        assert!(!s.powered_on);
        assert_eq!(s.available.compute, 0.5);
        assert_eq!(s.base_power_w, DeviceKind::OrinNano.base_power_w());
    }
}
