//! Differences between two placement assignments.
//!
//! The stateful placement pipeline threads the committed assignment from one
//! epoch into the next, so "what changed" becomes a first-class quantity:
//! the simulator charges migration carbon per moved application, and the
//! sweep report's churn column counts moves per run.  Both go through this
//! one helper so they can never disagree on what a "move" is.

use serde::{Deserialize, Serialize};

/// The per-application difference between a previous assignment and a new
/// one.  Applications are compared position-wise; an index past the end of
/// the shorter vector is treated as unplaced (`None`) on that side, so
/// assignments of different lengths diff without panicking.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AssignmentDiff {
    /// Applications placed in both assignments whose server changed.
    pub moved: Vec<usize>,
    /// Applications placed in both assignments on the same server.
    pub stayed: Vec<usize>,
    /// Applications placed before but unplaced now.
    pub evicted: Vec<usize>,
    /// Applications unplaced (or absent) before but placed now.
    pub arrived: Vec<usize>,
}

impl AssignmentDiff {
    /// Computes the diff from `previous` to `next`.  Applications unplaced
    /// on both sides appear in no bucket.
    pub fn between(previous: &[Option<usize>], next: &[Option<usize>]) -> Self {
        let mut diff = AssignmentDiff::default();
        let len = previous.len().max(next.len());
        for i in 0..len {
            let before = previous.get(i).copied().flatten();
            let after = next.get(i).copied().flatten();
            match (before, after) {
                (Some(a), Some(b)) if a == b => diff.stayed.push(i),
                (Some(_), Some(_)) => diff.moved.push(i),
                (Some(_), None) => diff.evicted.push(i),
                (None, Some(_)) => diff.arrived.push(i),
                (None, None) => {}
            }
        }
        diff
    }

    /// Number of applications that changed server.
    pub fn moves(&self) -> usize {
        self.moved.len()
    }

    /// Number of applications that kept their server.
    pub fn stays(&self) -> usize {
        self.stayed.len()
    }

    /// Number of applications that lost their placement.
    pub fn evictions(&self) -> usize {
        self.evicted.len()
    }

    /// Whether nothing moved, arrived or was evicted.
    pub fn is_stable(&self) -> bool {
        self.moved.is_empty() && self.evicted.is_empty() && self.arrived.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn between_classifies_every_transition() {
        let previous = vec![Some(0), Some(1), Some(2), None, None];
        let next = vec![Some(0), Some(3), None, Some(4), None];
        let diff = AssignmentDiff::between(&previous, &next);
        assert_eq!(diff.stayed, vec![0]);
        assert_eq!(diff.moved, vec![1]);
        assert_eq!(diff.evicted, vec![2]);
        assert_eq!(diff.arrived, vec![3]);
        assert_eq!(diff.moves(), 1);
        assert_eq!(diff.stays(), 1);
        assert_eq!(diff.evictions(), 1);
        assert!(!diff.is_stable());
    }

    #[test]
    fn identical_assignments_are_stable() {
        let a = vec![Some(2), None, Some(5)];
        let diff = AssignmentDiff::between(&a, &a);
        assert_eq!(diff.stayed, vec![0, 2]);
        assert!(diff.is_stable());
        assert_eq!(diff.moves(), 0);
    }

    #[test]
    fn length_mismatch_treats_missing_entries_as_unplaced() {
        // New arrivals extend the batch: extra entries diff as arrivals.
        let diff = AssignmentDiff::between(&[Some(1)], &[Some(1), Some(2)]);
        assert_eq!(diff.stayed, vec![0]);
        assert_eq!(diff.arrived, vec![1]);
        // A shrunk batch diffs the tail as evictions.
        let diff = AssignmentDiff::between(&[Some(1), Some(2)], &[Some(1)]);
        assert_eq!(diff.evicted, vec![1]);
    }

    #[test]
    fn empty_assignments_diff_to_empty() {
        let diff = AssignmentDiff::between(&[], &[]);
        assert!(diff.is_stable());
        assert_eq!(diff.stays(), 0);
    }
}
