//! The CarbonEdge incremental placement algorithm (Algorithm 1).
//!
//! The algorithm processes a batch of newly arriving applications:
//!
//! 1. compute the application-to-server latency matrix,
//! 2. filter out servers violating each application's latency constraint,
//! 3. fetch server telemetry (capacities, base power, power state, mean
//!    forecast carbon intensity),
//! 4. solve the placement optimization (Eq. 7) for the chosen policy,
//! 5. commit the placement and power decisions and update server state.
//!
//! Steps 1–3 are embodied in [`crate::problem::PlacementProblem`]; this
//! module performs steps 4–5.  Small instances are solved exactly (via the
//! generic branch-and-bound MILP when requested, or exhaustive enumeration
//! inside the assignment solver); large instances use the regret-greedy +
//! local-search assignment heuristic, which is how the framework scales to
//! CDN-sized batches (Figure 17).
//!
//! The exact path is built for **repeated** decisions: the placer's
//! [`BranchBoundSolver`] owns a scratch workspace (basis, basis inverse,
//! node arena) that persists across successive [`IncrementalPlacer::place`]
//! calls.  When consecutive calls build structurally identical MILPs —
//! which is exactly what happens when the same deployment is re-optimized
//! epoch after epoch as carbon intensities shift — the solver warm-starts
//! from the previous optimal basis (dual simplex for bound changes, primal
//! phase-2 for cost changes) instead of cold-starting, cutting the
//! per-decision latency well below the paper's ~3.3 ms OR-Tools budget.

use crate::diff::AssignmentDiff;
use crate::policy::PlacementPolicy;
use crate::problem::{PlacementProblem, PlacementState};
use carbonedge_solver::{
    AssignmentProblem, AssignmentSolver, BranchBoundSolver, Comparison, LinearExpr, MilpOutcome,
    Model,
};
use serde::{Deserialize, Serialize};

/// Errors returned by the placer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementError {
    /// The problem contains no applications.
    EmptyBatch,
    /// The problem contains no servers.
    NoServers,
    /// No feasible server exists for the listed applications.
    NoFeasibleServer(Vec<usize>),
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::EmptyBatch => write!(f, "placement batch is empty"),
            PlacementError::NoServers => write!(f, "no servers available"),
            PlacementError::NoFeasibleServer(apps) => {
                write!(f, "no feasible server for applications {apps:?}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// The outcome of one incremental placement round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementDecision {
    /// Chosen server index per application (`None` if the solver could not
    /// place the application within capacity).
    pub assignment: Vec<Option<usize>>,
    /// Servers that must be newly powered on.
    pub newly_activated: Vec<usize>,
    /// Applications the solver failed to place.
    pub unplaced: Vec<usize>,
    /// Total carbon of the decision over one epoch (Eq. 6), grams CO2eq.
    pub total_carbon_g: f64,
    /// Total energy of the decision over one epoch, joules.
    pub total_energy_j: f64,
    /// Mean round-trip latency of the placed applications, ms.
    pub mean_latency_ms: f64,
    /// Which policy produced the decision.
    pub policy: String,
    /// Whether the exact MILP solver produced the decision (vs. the
    /// assignment heuristic).
    pub exact: bool,
    /// Applications moved off their incumbent server (0 for stateless
    /// problems).
    pub moves: usize,
    /// Migration carbon charged for those moves (and any evictions), grams
    /// — *on top of* `total_carbon_g`, which stays the Eq. 6 operational +
    /// activation total.
    pub migration_carbon_g: f64,
}

/// The MILP form of one placement problem (Eq. 7), exposed so that callers —
/// the differential solver tests, the benches, external tools — can run the
/// exact same model through different solvers (LP relaxation via simplex,
/// exact branch-and-bound) and compare outcomes.
#[derive(Debug, Clone)]
pub struct PlacementModel {
    /// The minimization model.
    pub model: Model,
    /// `x[i][j]`: the binary assignment variable for a feasible
    /// `(application, server)` pair, `None` when the pair is infeasible.
    pub x: Vec<Vec<Option<carbonedge_solver::VarId>>>,
    /// `y[j]`: the binary power-state variable of each server.
    pub y: Vec<carbonedge_solver::VarId>,
}

impl PlacementModel {
    /// Decodes a solver value vector back into a per-application assignment.
    pub fn decode(&self, values: &[f64]) -> Vec<Option<usize>> {
        let mut assignment = vec![None; self.x.len()];
        for (i, x_row) in self.x.iter().enumerate() {
            for (j, v) in x_row.iter().enumerate() {
                if let Some(v) = v {
                    if values.get(v.index()).is_some_and(|val| *val > 0.5) {
                        assignment[i] = Some(j);
                    }
                }
            }
        }
        assignment
    }
}

/// The incremental placement service.
#[derive(Debug, Clone)]
pub struct IncrementalPlacer {
    /// The placement policy to optimize.
    pub policy: PlacementPolicy,
    /// Use the exact branch-and-bound MILP when the instance is small enough
    /// (`apps * servers <= exact_size_limit`).
    pub exact_size_limit: usize,
    /// Heuristic assignment solver configuration.
    pub assignment_solver: AssignmentSolver,
    /// Branch-and-bound configuration for the exact path.
    pub milp_solver: BranchBoundSolver,
}

impl IncrementalPlacer {
    /// Creates a placer for a policy with default solver settings: exact
    /// solving for instances up to 5 applications × 8 servers (the regional
    /// testbed scale), heuristic beyond that.
    pub fn new(policy: PlacementPolicy) -> Self {
        Self {
            policy,
            exact_size_limit: 40,
            assignment_solver: AssignmentSolver::new(),
            milp_solver: BranchBoundSolver::with_node_limit(20_000),
        }
    }

    /// Forces the heuristic path regardless of instance size.
    pub fn heuristic_only(mut self) -> Self {
        self.exact_size_limit = 0;
        self.assignment_solver.exhaustive_limit = 0;
        self
    }

    /// Sets the exact-MILP size threshold (`apps * servers`).
    pub fn with_exact_size_limit(mut self, limit: usize) -> Self {
        self.exact_size_limit = limit;
        self
    }

    /// Re-targets this placer at a different policy, keeping the solver
    /// configuration (exact-size threshold, heuristic parameters, node
    /// limits).  The scenario-sweep executor uses this to stamp per-cell
    /// policies onto one shared placer template instead of re-deriving the
    /// solver configuration in every cell.
    pub fn with_policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Objective value of an assignment under this placer's policy: the sum
    /// of the per-pair policy costs plus activation costs of newly powered-on
    /// servers.  Returns `None` when the assignment uses an infeasible pair.
    /// This is the quantity the exact and heuristic paths both minimize, so
    /// differential tests compare it rather than raw carbon.
    pub fn objective_of(
        &self,
        problem: &PlacementProblem,
        assignment: &[Option<usize>],
    ) -> Option<f64> {
        let (pair_cost, activation_cost) = self.policy.costs(problem);
        let mut total = 0.0;
        if let Some(state) = self.active_migration_state(problem) {
            total += state.migration_carbon_g(assignment);
        }
        let mut newly_on = vec![false; problem.servers.len()];
        for (i, a) in assignment.iter().enumerate() {
            let Some(j) = a else { continue };
            total += pair_cost.get(i)?.get(*j).copied()??;
            if !problem.servers[*j].powered_on {
                newly_on[*j] = true;
            }
        }
        for (j, on) in newly_on.iter().enumerate() {
            if *on {
                total += activation_cost[j];
            }
        }
        Some(total)
    }

    /// Builds the MILP of Eq. 7 for this placer's policy: binary `x_ij` per
    /// feasible pair, binary `y_j` per server, assignment / capacity /
    /// power-consistency / linking constraints — with the migration terms of
    /// the attached [`PlacementState`] folded into the pair costs (see
    /// `Self::fold_migration_costs`).
    pub fn build_model(&self, problem: &PlacementProblem) -> PlacementModel {
        let (mut pair_cost, activation_cost) = self.policy.costs(problem);
        self.fold_migration_costs(problem, &mut pair_cost);
        self.build_model_from_costs(problem, &pair_cost, &activation_cost)
    }

    /// The migration state that should influence this placer's decisions:
    /// present, carbon-commensurate with the policy, and not all-free.
    /// Free or unit-incompatible states still drive move *accounting*, but
    /// never alter the optimized costs — which is what pins the zero-cost
    /// stateful path to the stateless legacy decisions bit for bit.
    fn active_migration_state<'a>(
        &self,
        problem: &'a PlacementProblem,
    ) -> Option<&'a PlacementState> {
        problem
            .state
            .as_ref()
            .filter(|s| self.policy.migration_aware() && !s.is_free())
    }

    /// Folds the per-application migration costs into the pair costs: every
    /// feasible pair *other than* the incumbent gains the application's
    /// migration carbon.  With the assignment equality (Eq. 3) this is
    /// exactly the linearization of a binary "moved" indicator
    /// `moved_i = 1 - x_{i,prev(i)}` with objective `m_i * moved_i` — the
    /// indicator is eliminated into the costs rather than added as a
    /// variable, so the MILP keeps the *identical* structure across epochs
    /// and the branch-and-bound warm-starts every delta re-solve as a
    /// cost-only change.
    fn fold_migration_costs(&self, problem: &PlacementProblem, pair_cost: &mut [Vec<Option<f64>>]) {
        let Some(state) = self.active_migration_state(problem) else {
            return;
        };
        for (i, row) in pair_cost.iter_mut().enumerate() {
            let Some(prev) = state.previous.get(i).copied().flatten() else {
                continue;
            };
            let migration = state.migration[i].total_g();
            if migration <= 0.0 {
                continue;
            }
            for (j, cell) in row.iter_mut().enumerate() {
                if j != prev {
                    if let Some(cost) = cell {
                        *cost += migration;
                    }
                }
            }
        }
    }

    /// Runs Algorithm 1 on a placement problem.  When the problem carries a
    /// [`PlacementState`], the solve becomes a delta re-placement: the exact
    /// path minimizes operational + activation + migration carbon in one
    /// MILP (via the folded costs), and the heuristic path additionally gets
    /// a hysteresis pass that reverts any move whose forecast savings over
    /// the epoch do not exceed its migration cost.
    pub fn place(&self, problem: &PlacementProblem) -> Result<PlacementDecision, PlacementError> {
        let (apps, servers) = problem.size();
        if apps == 0 {
            return Err(PlacementError::EmptyBatch);
        }
        if servers == 0 {
            return Err(PlacementError::NoServers);
        }

        let (mut pair_cost, activation_cost) = self.policy.costs(problem);
        self.fold_migration_costs(problem, &mut pair_cost);

        // Applications with no feasible server at all: hard constraint failure.
        let stranded: Vec<usize> = (0..apps)
            .filter(|i| pair_cost[*i].iter().all(|c| c.is_none()))
            .collect();
        if !stranded.is_empty() {
            return Err(PlacementError::NoFeasibleServer(stranded));
        }

        let (mut assignment, exact) = if apps * servers <= self.exact_size_limit {
            match self.solve_exact(problem, &pair_cost, &activation_cost) {
                Some(a) => (a, true),
                None => (
                    self.solve_heuristic(problem, &pair_cost, &activation_cost),
                    false,
                ),
            }
        } else {
            (
                self.solve_heuristic(problem, &pair_cost, &activation_cost),
                false,
            )
        };
        if !exact {
            self.apply_move_hysteresis(problem, &pair_cost, &mut assignment);
        }
        let assignment = assignment;

        let unplaced: Vec<usize> = assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_none())
            .map(|(i, _)| i)
            .collect();
        let mut newly_activated: Vec<usize> = assignment
            .iter()
            .flatten()
            .copied()
            .filter(|j| !problem.servers[*j].powered_on)
            .collect();
        newly_activated.sort_unstable();
        newly_activated.dedup();
        let (moves, migration_carbon_g) = match &problem.state {
            Some(state) => (
                AssignmentDiff::between(&state.previous, &assignment).moves(),
                state.migration_carbon_g(&assignment),
            ),
            None => (0, 0.0),
        };

        Ok(PlacementDecision {
            total_carbon_g: problem.total_carbon_g(&assignment).unwrap_or(f64::NAN),
            total_energy_j: problem.total_energy_j(&assignment).unwrap_or(f64::NAN),
            mean_latency_ms: problem.mean_latency_ms(&assignment),
            assignment,
            newly_activated,
            unplaced,
            policy: self.policy.name(),
            exact,
            moves,
            migration_carbon_g,
        })
    }

    /// The hysteresis rule of the heuristic path: visit moved applications
    /// in index order and revert each to its incumbent server when the
    /// folded cost of staying is no worse than the folded cost of the move
    /// (equivalently: the forecast carbon savings over the epoch do not
    /// exceed the migration cost), provided the incumbent is still feasible,
    /// has the capacity, and reverting cannot newly activate a server.  The
    /// exact path needs no such pass — the folded MILP already trades moves
    /// against savings optimally.
    fn apply_move_hysteresis(
        &self,
        problem: &PlacementProblem,
        pair_cost: &[Vec<Option<f64>>],
        assignment: &mut [Option<usize>],
    ) {
        if self.active_migration_state(problem).is_none() {
            return;
        }
        let state = problem.state.as_ref().expect("active state exists");
        // Running per-server usage of the current assignment.
        let servers = problem.servers.len();
        let mut used = vec![[0.0f64; 3]; servers];
        for (i, a) in assignment.iter().enumerate() {
            let Some(j) = a else { continue };
            let d = problem.demand(i, *j).expect("assigned pair has demand");
            used[*j][0] += d.compute;
            used[*j][1] += d.memory_mb;
            used[*j][2] += d.bandwidth_mbps;
        }
        for i in 0..assignment.len() {
            let Some(prev) = state.previous.get(i).copied().flatten() else {
                continue;
            };
            let Some(current) = assignment[i] else {
                continue;
            };
            if current == prev {
                continue;
            }
            let (Some(keep_cost), Some(move_cost)) = (pair_cost[i][prev], pair_cost[i][current])
            else {
                continue;
            };
            // `move_cost` carries the folded migration term, so this is the
            // hysteresis comparison: savings must *exceed* the migration
            // cost for the move to survive.
            if keep_cost > move_cost {
                continue;
            }
            // Reverting must not newly activate the incumbent.
            let incumbent_active =
                problem.servers[prev].powered_on || used[prev].iter().any(|u| *u > 0.0);
            if !incumbent_active {
                continue;
            }
            let Some(d) = problem.demand(i, prev) else {
                continue;
            };
            let cap = problem.servers[prev].available;
            let fits = used[prev][0] + d.compute <= cap.compute + 1e-9
                && used[prev][1] + d.memory_mb <= cap.memory_mb + 1e-9
                && used[prev][2] + d.bandwidth_mbps <= cap.bandwidth_mbps + 1e-9;
            if !fits {
                continue;
            }
            let d_cur = problem
                .demand(i, current)
                .expect("assigned pair has demand");
            used[current][0] -= d_cur.compute;
            used[current][1] -= d_cur.memory_mb;
            used[current][2] -= d_cur.bandwidth_mbps;
            used[prev][0] += d.compute;
            used[prev][1] += d.memory_mb;
            used[prev][2] += d.bandwidth_mbps;
            assignment[i] = Some(prev);
        }
    }

    /// Builds the assignment-problem form and solves it heuristically.
    fn solve_heuristic(
        &self,
        problem: &PlacementProblem,
        pair_cost: &[Vec<Option<f64>>],
        activation_cost: &[f64],
    ) -> Vec<Option<usize>> {
        let (apps, servers) = problem.size();
        let demand: Vec<Vec<Vec<f64>>> = (0..apps)
            .map(|i| {
                (0..servers)
                    .map(|j| match problem.demand(i, j) {
                        Some(d) => vec![d.compute, d.memory_mb, d.bandwidth_mbps],
                        None => vec![0.0, 0.0, 0.0],
                    })
                    .collect()
            })
            .collect();
        let capacity: Vec<Vec<f64>> = (0..servers)
            .map(|j| {
                let c = problem.servers[j].available;
                vec![c.compute, c.memory_mb, c.bandwidth_mbps]
            })
            .collect();
        let instance = AssignmentProblem {
            cost: pair_cost.to_vec(),
            demand,
            capacity,
            activation_cost: activation_cost.to_vec(),
            open: problem.servers.iter().map(|s| s.powered_on).collect(),
        };
        self.assignment_solver.solve(&instance).assignment
    }

    /// Builds the MILP of Eq. 7 from precomputed policy costs.
    ///
    /// Variables: `x_ij` per feasible pair, `y_j` per server.  Constraints:
    /// assignment (Eq. 3), capacity linked to power state (Eq. 1), power
    /// consistency (Eq. 4) and assignment-requires-active (Eq. 5).
    fn build_model_from_costs(
        &self,
        problem: &PlacementProblem,
        pair_cost: &[Vec<Option<f64>>],
        activation_cost: &[f64],
    ) -> PlacementModel {
        let (apps, servers) = problem.size();
        let mut model = Model::new();
        // x variables for feasible pairs only.
        let mut x: Vec<Vec<Option<carbonedge_solver::VarId>>> = vec![vec![None; servers]; apps];
        for i in 0..apps {
            for j in 0..servers {
                if let Some(cost) = pair_cost[i][j] {
                    let v = model.add_binary();
                    model.set_objective_term(v, cost);
                    x[i][j] = Some(v);
                }
            }
        }
        // y variables per server; objective carries the activation cost for
        // currently-off servers (y_j - y_j^curr reduces to y_j when off, and
        // the power-consistency constraint pins y_j = 1 when already on).
        let y: Vec<carbonedge_solver::VarId> = (0..servers).map(|_| model.add_binary()).collect();
        for j in 0..servers {
            if problem.servers[j].powered_on {
                // Power-state consistency (Eq. 4): already-on servers stay on.
                model.add_constraint(
                    LinearExpr::new().with(y[j], 1.0),
                    Comparison::Equal,
                    1.0,
                    format!("power-consistency-{j}"),
                );
            } else {
                model.set_objective_term(y[j], activation_cost[j]);
            }
        }
        // Assignment constraints (Eq. 3).
        for (i, x_row) in x.iter().enumerate() {
            let mut expr = LinearExpr::new();
            for v in x_row.iter().flatten() {
                expr.add(*v, 1.0);
            }
            model.add_constraint(expr, Comparison::Equal, 1.0, format!("assign-{i}"));
        }
        // Capacity constraints per server and resource dimension (Eq. 1),
        // with the y_j coupling, and x <= y linking (Eq. 5).
        for j in 0..servers {
            let cap = problem.servers[j].available;
            for (k, cap_k) in [cap.compute, cap.memory_mb, cap.bandwidth_mbps]
                .into_iter()
                .enumerate()
            {
                let mut expr = LinearExpr::new();
                for (i, x_row) in x.iter().enumerate() {
                    if let Some(v) = x_row[j] {
                        let d = problem.demand(i, j).expect("feasible pair has demand");
                        let d_k = [d.compute, d.memory_mb, d.bandwidth_mbps][k];
                        expr.add(v, d_k);
                    }
                }
                expr.add(y[j], -cap_k);
                if !expr.terms.is_empty() {
                    model.add_constraint(expr, Comparison::LessEq, 0.0, format!("cap-{j}-{k}"));
                }
            }
            for (i, x_row) in x.iter().enumerate() {
                if let Some(v) = x_row[j] {
                    model.add_constraint(
                        LinearExpr::new().with(v, 1.0).with(y[j], -1.0),
                        Comparison::LessEq,
                        0.0,
                        format!("active-{i}-{j}"),
                    );
                }
            }
        }

        PlacementModel { model, x, y }
    }

    /// Solves the MILP of Eq. 7 exactly with branch-and-bound.
    fn solve_exact(
        &self,
        problem: &PlacementProblem,
        pair_cost: &[Vec<Option<f64>>],
        activation_cost: &[f64],
    ) -> Option<Vec<Option<usize>>> {
        let placement_model = self.build_model_from_costs(problem, pair_cost, activation_cost);
        let solution = self.milp_solver.solve(&placement_model.model);
        if !matches!(
            solution.outcome,
            MilpOutcome::Optimal | MilpOutcome::Feasible
        ) {
            return None;
        }
        Some(placement_model.decode(&solution.values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{MigrationCost, ServerSnapshot};
    use carbonedge_geo::Coordinates;
    use carbonedge_grid::ZoneId;
    use carbonedge_net::LatencyModel;
    use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind, ResourceDemand};

    fn green_and_dirty_problem(slo_ms: f64) -> PlacementProblem {
        let servers = vec![
            ServerSnapshot::new(
                0,
                0,
                ZoneId(0),
                DeviceKind::A2,
                Coordinates::new(48.14, 11.58),
            )
            .with_carbon_intensity(550.0),
            ServerSnapshot::new(
                1,
                1,
                ZoneId(1),
                DeviceKind::A2,
                Coordinates::new(46.95, 7.45),
            )
            .with_carbon_intensity(45.0),
        ];
        let apps = vec![Application::new(
            AppId(0),
            ModelKind::ResNet50,
            20.0,
            slo_ms,
            Coordinates::new(48.14, 11.58),
            0,
        )];
        PlacementProblem::new(servers, apps, 1.0).with_latency_model(LatencyModel::deterministic())
    }

    #[test]
    fn carbon_aware_shifts_to_green_zone() {
        let p = green_and_dirty_problem(30.0);
        let d = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        assert_eq!(d.assignment, vec![Some(1)]);
        assert!(d.exact, "small instance should use the exact solver");
        assert!(d.unplaced.is_empty());
    }

    #[test]
    fn latency_aware_stays_local() {
        let p = green_and_dirty_problem(30.0);
        let d = IncrementalPlacer::new(PlacementPolicy::LatencyAware)
            .place(&p)
            .unwrap();
        assert_eq!(d.assignment, vec![Some(0)]);
    }

    #[test]
    fn tight_slo_forces_local_placement_even_for_carbon_aware() {
        let p = green_and_dirty_problem(3.0);
        let d = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        assert_eq!(d.assignment, vec![Some(0)]);
    }

    #[test]
    fn impossible_slo_reports_stranded_apps() {
        let mut p = green_and_dirty_problem(30.0);
        p.apps[0].latency_slo_ms = 0.01;
        let err = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap_err();
        assert_eq!(err, PlacementError::NoFeasibleServer(vec![0]));
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let p = PlacementProblem::new(vec![], vec![], 1.0);
        assert_eq!(
            IncrementalPlacer::new(PlacementPolicy::CarbonAware)
                .place(&p)
                .unwrap_err(),
            PlacementError::EmptyBatch
        );
        let p2 = green_and_dirty_problem(30.0);
        let no_servers = PlacementProblem::new(vec![], p2.apps.clone(), 1.0);
        assert_eq!(
            IncrementalPlacer::new(PlacementPolicy::CarbonAware)
                .place(&no_servers)
                .unwrap_err(),
            PlacementError::NoServers
        );
    }

    #[test]
    fn carbon_decision_never_exceeds_latency_aware_carbon() {
        let p = green_and_dirty_problem(30.0);
        let carbon = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        let latency = IncrementalPlacer::new(PlacementPolicy::LatencyAware)
            .place(&p)
            .unwrap();
        assert!(carbon.total_carbon_g <= latency.total_carbon_g + 1e-9);
        assert!(carbon.mean_latency_ms >= latency.mean_latency_ms - 1e-9);
    }

    #[test]
    fn capacity_overflow_spills_to_second_server() {
        // One saturating batch: each A2 fits ~3 apps at 25 rps of ResNet50
        // (25 * 13ms = 0.325 utilization each), so 6 apps need both servers.
        let servers = vec![
            ServerSnapshot::new(
                0,
                0,
                ZoneId(0),
                DeviceKind::A2,
                Coordinates::new(48.14, 11.58),
            )
            .with_carbon_intensity(550.0),
            ServerSnapshot::new(
                1,
                1,
                ZoneId(1),
                DeviceKind::A2,
                Coordinates::new(46.95, 7.45),
            )
            .with_carbon_intensity(45.0),
        ];
        let apps: Vec<Application> = (0..6)
            .map(|i| {
                Application::new(
                    AppId(i),
                    ModelKind::ResNet50,
                    25.0,
                    40.0,
                    Coordinates::new(48.14, 11.58),
                    0,
                )
            })
            .collect();
        let p = PlacementProblem::new(servers, apps, 1.0)
            .with_latency_model(LatencyModel::deterministic());
        let d = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        assert!(d.unplaced.is_empty());
        let on_green = d.assignment.iter().filter(|a| **a == Some(1)).count();
        let on_dirty = d.assignment.iter().filter(|a| **a == Some(0)).count();
        assert_eq!(on_green, 3, "green server should be filled to capacity");
        assert_eq!(
            on_dirty, 3,
            "capacity must force spillover to the dirty server"
        );
    }

    #[test]
    fn newly_activated_servers_are_reported() {
        let mut p = green_and_dirty_problem(30.0);
        p.servers[1].powered_on = false;
        let d = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        // Still worth activating the green server: activation carbon of an A2
        // for one hour at 45 g/kWh is tiny compared to the operational savings.
        assert_eq!(d.assignment, vec![Some(1)]);
        assert_eq!(d.newly_activated, vec![1]);
    }

    #[test]
    fn activation_cost_can_keep_app_local() {
        // Make the green server's activation very expensive by giving it a
        // huge base power; for a single small app the activation carbon then
        // outweighs the operational savings.
        let mut p = green_and_dirty_problem(30.0);
        p.servers[1].powered_on = false;
        p.servers[1].base_power_w = 100_000.0;
        p.apps[0].request_rate_rps = 1.0;
        let d = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        assert_eq!(d.assignment, vec![Some(0)]);
        assert!(d.newly_activated.is_empty());
    }

    #[test]
    fn heuristic_and_exact_agree_on_small_instances() {
        let p = green_and_dirty_problem(30.0);
        let exact = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        let heuristic = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .heuristic_only()
            .place(&p)
            .unwrap();
        assert!(!heuristic.exact);
        assert!((exact.total_carbon_g - heuristic.total_carbon_g).abs() < 1e-6);
    }

    #[test]
    fn energy_aware_picks_efficient_device() {
        let servers = vec![
            ServerSnapshot::new(
                0,
                0,
                ZoneId(0),
                DeviceKind::Gtx1080,
                Coordinates::new(48.0, 11.0),
            )
            .with_carbon_intensity(50.0),
            ServerSnapshot::new(
                1,
                0,
                ZoneId(0),
                DeviceKind::OrinNano,
                Coordinates::new(48.0, 11.0),
            )
            .with_carbon_intensity(50.0),
        ];
        let apps = vec![Application::new(
            AppId(0),
            ModelKind::EfficientNetB0,
            10.0,
            20.0,
            Coordinates::new(48.0, 11.0),
            0,
        )];
        let p = PlacementProblem::new(servers, apps, 1.0)
            .with_latency_model(LatencyModel::deterministic());
        let d = IncrementalPlacer::new(PlacementPolicy::EnergyAware)
            .place(&p)
            .unwrap();
        assert_eq!(d.assignment, vec![Some(1)]);
    }

    #[test]
    fn larger_batch_uses_heuristic_and_respects_capacity() {
        // 20 apps x 6 servers exceeds the default exact limit.
        let servers: Vec<ServerSnapshot> = (0..6)
            .map(|j| {
                ServerSnapshot::new(
                    j,
                    j,
                    ZoneId(j),
                    DeviceKind::A2,
                    Coordinates::new(46.0 + j as f64 * 0.5, 8.0 + j as f64 * 0.5),
                )
                .with_carbon_intensity(100.0 + 80.0 * j as f64)
            })
            .collect();
        let apps: Vec<Application> = (0..20)
            .map(|i| {
                Application::new(
                    AppId(i),
                    ModelKind::ResNet50,
                    15.0,
                    60.0,
                    Coordinates::new(46.0, 8.0),
                    0,
                )
            })
            .collect();
        let p = PlacementProblem::new(servers, apps, 1.0)
            .with_latency_model(LatencyModel::deterministic());
        let d = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        assert!(!d.exact);
        assert!(d.unplaced.is_empty());
        // Per-server compute usage must stay within one device each.
        let mut usage = vec![0.0f64; 6];
        for (i, a) in d.assignment.iter().enumerate() {
            let j = a.unwrap();
            usage[j] += p.demand(i, j).unwrap().compute;
        }
        for u in usage {
            assert!(u <= 1.0 + 1e-6, "usage {u}");
        }
    }

    #[test]
    fn decision_metrics_are_consistent() {
        let p = green_and_dirty_problem(30.0);
        let d = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        assert!((d.total_carbon_g - p.total_carbon_g(&d.assignment).unwrap()).abs() < 1e-9);
        assert!((d.total_energy_j - p.total_energy_j(&d.assignment).unwrap()).abs() < 1e-9);
        assert_eq!(d.policy, "CarbonEdge");
    }

    #[test]
    fn placement_error_display() {
        assert!(PlacementError::EmptyBatch.to_string().contains("empty"));
        assert!(PlacementError::NoFeasibleServer(vec![1, 2])
            .to_string()
            .contains("[1, 2]"));
    }

    #[test]
    fn repeated_placements_reuse_the_solver_workspace() {
        // The exact path's solver workspace persists across `place` calls;
        // re-solving the identical problem must warm-start to the identical
        // decision (a fixed point, not an approximation).
        let p = green_and_dirty_problem(30.0);
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        let first = placer.place(&p).unwrap();
        assert!(first.exact);
        for _ in 0..3 {
            let again = placer.place(&p).unwrap();
            assert_eq!(first, again);
        }
    }

    #[test]
    fn with_policy_keeps_solver_configuration() {
        let template = IncrementalPlacer::new(PlacementPolicy::LatencyAware)
            .heuristic_only()
            .with_exact_size_limit(7);
        let stamped = template.clone().with_policy(PlacementPolicy::CarbonAware);
        assert_eq!(stamped.policy, PlacementPolicy::CarbonAware);
        assert_eq!(stamped.exact_size_limit, 7);
        assert_eq!(
            stamped.assignment_solver.exhaustive_limit,
            template.assignment_solver.exhaustive_limit
        );
    }

    #[test]
    fn build_model_matches_place_objective() {
        // Solving the public MILP form directly must reproduce the decision
        // the placer's exact path commits.
        let p = green_and_dirty_problem(30.0);
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        let placement_model = placer.build_model(&p);
        let solution = placer.milp_solver.solve(&placement_model.model);
        assert!(solution.has_solution());
        let assignment = placement_model.decode(&solution.values);
        let decision = placer.place(&p).unwrap();
        assert_eq!(assignment, decision.assignment);
        let objective = placer.objective_of(&p, &assignment).unwrap();
        assert!((objective - solution.objective).abs() < 1e-6);
    }

    #[test]
    fn objective_of_rejects_infeasible_assignments() {
        let p = green_and_dirty_problem(3.0); // remote server violates the SLO
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        assert!(placer.objective_of(&p, &[Some(1)]).is_none());
        assert!(placer.objective_of(&p, &[Some(0)]).is_some());
        // Unplaced applications contribute nothing.
        assert_eq!(placer.objective_of(&p, &[None]), Some(0.0));
    }

    #[test]
    fn objective_of_includes_activation_costs() {
        let mut p = green_and_dirty_problem(30.0);
        p.servers[1].powered_on = false;
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        let objective = placer.objective_of(&p, &[Some(1)]).unwrap();
        let expected = p.operational_carbon_g(0, 1).unwrap() + p.activation_carbon_g(1);
        assert!((objective - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_cost_state_reproduces_stateless_decisions_and_counts_moves() {
        let p = green_and_dirty_problem(30.0);
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        let stateless = placer.place(&p).unwrap();
        let stateful = placer
            .place(&p.clone().with_state(PlacementState::free(vec![Some(0)])))
            .unwrap();
        assert_eq!(stateless.assignment, stateful.assignment);
        assert_eq!(stateless.total_carbon_g, stateful.total_carbon_g);
        assert_eq!(stateless.moves, 0, "stateless problems report no moves");
        assert_eq!(stateful.moves, 1, "free state still tracks churn");
        assert_eq!(stateful.migration_carbon_g, 0.0);
    }

    #[test]
    fn migration_cost_pins_app_to_incumbent_on_the_exact_path() {
        let p = green_and_dirty_problem(30.0);
        let savings = p.operational_carbon_g(0, 0).unwrap() - p.operational_carbon_g(0, 1).unwrap();
        assert!(savings > 0.0);
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        // Migration dearer than the epoch's savings: stay on the dirty
        // incumbent.
        let pinned = placer
            .place(&p.clone().with_state(PlacementState::new(
                vec![Some(0)],
                vec![MigrationCost::new(savings * 2.0, 0.0)],
            )))
            .unwrap();
        assert!(pinned.exact);
        assert_eq!(pinned.assignment, vec![Some(0)]);
        assert_eq!(pinned.moves, 0);
        assert_eq!(pinned.migration_carbon_g, 0.0);
        // Migration cheaper than the savings: move and get charged for it.
        let moved = placer
            .place(&p.with_state(PlacementState::new(
                vec![Some(0)],
                vec![MigrationCost::new(savings * 0.5, 0.0)],
            )))
            .unwrap();
        assert_eq!(moved.assignment, vec![Some(1)]);
        assert_eq!(moved.moves, 1);
        assert!((moved.migration_carbon_g - savings * 0.5).abs() < 1e-9);
    }

    #[test]
    fn heuristic_hysteresis_matches_the_exact_migration_tradeoff() {
        let p = green_and_dirty_problem(30.0);
        let savings = p.operational_carbon_g(0, 0).unwrap() - p.operational_carbon_g(0, 1).unwrap();
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware).heuristic_only();
        let pinned = placer
            .place(&p.clone().with_state(PlacementState::new(
                vec![Some(0)],
                vec![MigrationCost::new(savings * 2.0, 0.0)],
            )))
            .unwrap();
        assert!(!pinned.exact);
        assert_eq!(
            pinned.assignment,
            vec![Some(0)],
            "move savings below the migration cost must be held back"
        );
        let moved = placer
            .place(&p.with_state(PlacementState::new(
                vec![Some(0)],
                vec![MigrationCost::new(savings * 0.5, 0.0)],
            )))
            .unwrap();
        assert_eq!(moved.assignment, vec![Some(1)]);
        assert!((moved.migration_carbon_g - savings * 0.5).abs() < 1e-9);
    }

    #[test]
    fn migration_costs_never_alter_unit_incompatible_policies() {
        // The latency-aware policy costs pairs in milliseconds; a gram-
        // denominated migration cost must not leak into its decisions, but
        // its moves are still accounted.
        let p = green_and_dirty_problem(30.0).with_state(PlacementState::new(
            vec![Some(1)],
            vec![MigrationCost::new(1e9, 0.0)],
        ));
        let d = IncrementalPlacer::new(PlacementPolicy::LatencyAware)
            .place(&p)
            .unwrap();
        assert_eq!(d.assignment, vec![Some(0)], "latency policy stays local");
        assert_eq!(d.moves, 1);
        assert!((d.migration_carbon_g - 1e9).abs() < 1e-3);
    }

    #[test]
    fn objective_of_includes_migration_for_carbon_policies() {
        let p = green_and_dirty_problem(30.0);
        let migration = MigrationCost::new(7.0, 3.0);
        let stateful = p
            .clone()
            .with_state(PlacementState::new(vec![Some(0)], vec![migration]));
        let placer = IncrementalPlacer::new(PlacementPolicy::CarbonAware);
        let stay = placer.objective_of(&stateful, &[Some(0)]).unwrap();
        let move_away = placer.objective_of(&stateful, &[Some(1)]).unwrap();
        assert!((stay - p.operational_carbon_g(0, 0).unwrap()).abs() < 1e-9);
        assert!(
            (move_away - (p.operational_carbon_g(0, 1).unwrap() + migration.total_g())).abs()
                < 1e-9
        );
        // The MILP form agrees with objective_of on the migration-aware
        // objective, so the differential tests keep one common yardstick.
        let placement_model = placer.build_model(&stateful);
        let solution = placer.milp_solver.solve(&placement_model.model);
        assert!(solution.has_solution());
        let assignment = placement_model.decode(&solution.values);
        let objective = placer.objective_of(&stateful, &assignment).unwrap();
        assert!((objective - solution.objective).abs() < 1e-6);
    }

    #[test]
    fn unused_capacity_override_respected() {
        // A server with zero available compute cannot take the app.
        let mut p = green_and_dirty_problem(30.0);
        p.servers[1].available = ResourceDemand::new(0.0, 16_000.0, 1000.0);
        let d = IncrementalPlacer::new(PlacementPolicy::CarbonAware)
            .place(&p)
            .unwrap();
        assert_eq!(d.assignment, vec![Some(0)]);
    }
}
