//! Placement policies.
//!
//! The paper evaluates its carbon-aware policy against three baselines
//! (Section 6.1.3): `Latency-aware` (place on the nearest edge data center),
//! `Energy-aware` (minimize energy subject to latency and resource
//! constraints) and `Intensity-aware` (greedily choose the lowest-carbon-
//! intensity feasible location).  Section 6.4 adds a multi-objective
//! carbon–energy policy (Eq. 8) parameterized by a weight α.
//!
//! A policy is expressed as a cost function over feasible `(application,
//! server)` pairs plus a per-server activation cost; the incremental
//! placement algorithm minimizes the summed cost.

use crate::problem::PlacementProblem;
use serde::{Deserialize, Serialize};

/// The placement policies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// The CarbonEdge policy: minimize total carbon (Eq. 6) — operational
    /// carbon plus server-activation carbon.
    CarbonAware,
    /// Place each application on its nearest (lowest-latency) feasible
    /// server; ignores carbon and energy.
    LatencyAware,
    /// Minimize energy consumption (operational plus activation energy).
    EnergyAware,
    /// Greedily prefer the feasible server with the lowest carbon intensity,
    /// regardless of the application's energy profile on it.
    IntensityAware,
    /// The multi-objective carbon–energy policy of Eq. 8:
    /// `α · normalized-energy + (1 − α) · normalized-carbon`.
    /// `α = 0` recovers `CarbonAware`, `α = 1` recovers `EnergyAware`.
    CarbonEnergyTradeoff {
        /// Energy weight α ∈ [0, 1].
        alpha: f64,
    },
}

impl PlacementPolicy {
    /// Display name used in experiment output.
    pub fn name(&self) -> String {
        match self {
            PlacementPolicy::CarbonAware => "CarbonEdge".to_string(),
            PlacementPolicy::LatencyAware => "Latency-aware".to_string(),
            PlacementPolicy::EnergyAware => "Energy-aware".to_string(),
            PlacementPolicy::IntensityAware => "Intensity-aware".to_string(),
            PlacementPolicy::CarbonEnergyTradeoff { alpha } => format!("CarbonEdge(α={alpha:.2})"),
        }
    }

    /// All single-objective policies (the four compared in Figure 15).
    pub const BASELINE_SET: [PlacementPolicy; 4] = [
        PlacementPolicy::LatencyAware,
        PlacementPolicy::EnergyAware,
        PlacementPolicy::IntensityAware,
        PlacementPolicy::CarbonAware,
    ];

    /// Whether this policy's pair costs are denominated in grams of carbon,
    /// making a per-move migration carbon term directly commensurate with
    /// its objective.  Only such policies weigh migration cost in their
    /// *decisions*; every policy still has migration carbon *accounted*
    /// after the fact, but folding grams into, say, the latency-aware
    /// policy's millisecond costs would mix units.
    pub fn migration_aware(&self) -> bool {
        matches!(self, PlacementPolicy::CarbonAware)
    }

    /// Builds the per-pair operational costs and per-server activation costs
    /// the placement optimizer should minimize for this policy.
    ///
    /// Returns `(pair_cost, activation_cost)`, where `pair_cost[i][j]` is
    /// `None` for infeasible pairs (hardware or latency), and
    /// `activation_cost[j]` is the extra cost of newly powering on server `j`.
    pub fn costs(&self, problem: &PlacementProblem) -> (Vec<Vec<Option<f64>>>, Vec<f64>) {
        let (apps, servers) = problem.size();
        let feasible_cost = |i: usize, j: usize| -> Option<f64> {
            if !problem.is_feasible_pair(i, j) {
                return None;
            }
            match self {
                PlacementPolicy::CarbonAware => problem.operational_carbon_g(i, j),
                PlacementPolicy::LatencyAware => Some(problem.latency_ms(i, j)),
                PlacementPolicy::EnergyAware => problem.energy_j(i, j),
                PlacementPolicy::IntensityAware => Some(problem.servers[j].carbon_intensity),
                PlacementPolicy::CarbonEnergyTradeoff { .. } => {
                    // Filled in after normalization below; return raw carbon for now.
                    problem.operational_carbon_g(i, j)
                }
            }
        };

        let mut pair_cost: Vec<Vec<Option<f64>>> = (0..apps)
            .map(|i| (0..servers).map(|j| feasible_cost(i, j)).collect())
            .collect();

        let mut activation: Vec<f64> = (0..servers)
            .map(|j| {
                if problem.servers[j].powered_on {
                    0.0
                } else {
                    match self {
                        PlacementPolicy::CarbonAware => problem.activation_carbon_g(j),
                        PlacementPolicy::EnergyAware => problem.activation_energy_j(j),
                        PlacementPolicy::LatencyAware | PlacementPolicy::IntensityAware => 0.0,
                        PlacementPolicy::CarbonEnergyTradeoff { .. } => 0.0, // set below
                    }
                }
            })
            .collect();

        if let PlacementPolicy::CarbonEnergyTradeoff { alpha } = self {
            let alpha = alpha.clamp(0.0, 1.0);
            // Min-max normalize carbon and energy over the feasible pairs
            // (the paper normalizes both objectives to [0, 1]).
            let mut carbon_vals = Vec::new();
            let mut energy_vals = Vec::new();
            for i in 0..apps {
                for j in 0..servers {
                    if problem.is_feasible_pair(i, j) {
                        if let (Some(c), Some(e)) =
                            (problem.operational_carbon_g(i, j), problem.energy_j(i, j))
                        {
                            carbon_vals.push(c);
                            energy_vals.push(e);
                        }
                    }
                }
            }
            let range = |vals: &[f64]| -> (f64, f64) {
                let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (min, (max - min).max(1e-12))
            };
            if !carbon_vals.is_empty() {
                let (cmin, cspan) = range(&carbon_vals);
                let (emin, espan) = range(&energy_vals);
                for (i, row) in pair_cost.iter_mut().enumerate() {
                    for (j, cell) in row.iter_mut().enumerate() {
                        if cell.is_some() {
                            let c = problem.operational_carbon_g(i, j).unwrap();
                            let e = problem.energy_j(i, j).unwrap();
                            let norm =
                                alpha * (e - emin) / espan + (1.0 - alpha) * (c - cmin) / cspan;
                            *cell = Some(norm);
                        }
                    }
                }
                // Activation costs normalized against the same spans so they
                // stay commensurate with the pair costs.
                for (j, act) in activation.iter_mut().enumerate() {
                    if !problem.servers[j].powered_on {
                        let c = problem.activation_carbon_g(j) / cspan;
                        let e = problem.activation_energy_j(j) / espan;
                        *act = alpha * e + (1.0 - alpha) * c;
                    }
                }
            }
        }

        (pair_cost, activation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ServerSnapshot;
    use carbonedge_geo::Coordinates;
    use carbonedge_grid::ZoneId;
    use carbonedge_net::LatencyModel;
    use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};

    fn problem() -> PlacementProblem {
        let servers = vec![
            // Local, dirty, energy-hungry GTX 1080.
            ServerSnapshot::new(
                0,
                0,
                ZoneId(0),
                DeviceKind::Gtx1080,
                Coordinates::new(48.14, 11.58),
            )
            .with_carbon_intensity(500.0),
            // Remote (~335 km), green, efficient A2 — currently off.
            ServerSnapshot::new(
                1,
                1,
                ZoneId(1),
                DeviceKind::A2,
                Coordinates::new(46.95, 7.45),
            )
            .with_carbon_intensity(50.0)
            .with_powered_on(false),
        ];
        let app = Application::new(
            AppId(0),
            ModelKind::ResNet50,
            20.0,
            40.0,
            Coordinates::new(48.14, 11.58),
            0,
        );
        PlacementProblem::new(servers, vec![app], 1.0)
            .with_latency_model(LatencyModel::deterministic())
    }

    #[test]
    fn carbon_aware_prefers_green_server() {
        let p = problem();
        let (costs, _) = PlacementPolicy::CarbonAware.costs(&p);
        assert!(costs[0][1].unwrap() < costs[0][0].unwrap());
    }

    #[test]
    fn latency_aware_prefers_local_server() {
        let p = problem();
        let (costs, activation) = PlacementPolicy::LatencyAware.costs(&p);
        assert!(costs[0][0].unwrap() < costs[0][1].unwrap());
        assert_eq!(activation, vec![0.0, 0.0]);
    }

    #[test]
    fn energy_aware_prefers_efficient_device() {
        let p = problem();
        let (costs, _) = PlacementPolicy::EnergyAware.costs(&p);
        // ResNet50 on A2 uses less energy than on GTX 1080.
        assert!(costs[0][1].unwrap() < costs[0][0].unwrap());
    }

    #[test]
    fn intensity_aware_uses_zone_intensity_only() {
        let p = problem();
        let (costs, _) = PlacementPolicy::IntensityAware.costs(&p);
        assert_eq!(costs[0][0].unwrap(), 500.0);
        assert_eq!(costs[0][1].unwrap(), 50.0);
    }

    #[test]
    fn infeasible_pairs_have_no_cost() {
        let mut p = problem();
        p.apps[0].latency_slo_ms = 3.0; // remote server now violates the SLO
        let (costs, _) = PlacementPolicy::CarbonAware.costs(&p);
        assert!(costs[0][0].is_some());
        assert!(costs[0][1].is_none());
    }

    #[test]
    fn activation_costs_only_for_powered_off_servers() {
        let p = problem();
        let (_, act_carbon) = PlacementPolicy::CarbonAware.costs(&p);
        assert_eq!(act_carbon[0], 0.0);
        assert!(act_carbon[1] > 0.0);
        let (_, act_energy) = PlacementPolicy::EnergyAware.costs(&p);
        assert!(act_energy[1] > 0.0);
    }

    #[test]
    fn tradeoff_alpha_zero_matches_carbon_ranking() {
        let p = problem();
        let (carbon, _) = PlacementPolicy::CarbonAware.costs(&p);
        let (mixed, _) = PlacementPolicy::CarbonEnergyTradeoff { alpha: 0.0 }.costs(&p);
        // Same ranking of the two servers.
        assert_eq!(carbon[0][0] > carbon[0][1], mixed[0][0] > mixed[0][1]);
    }

    #[test]
    fn tradeoff_costs_are_normalized() {
        let p = problem();
        let (mixed, _) = PlacementPolicy::CarbonEnergyTradeoff { alpha: 0.5 }.costs(&p);
        for cell in mixed[0].iter().take(2) {
            let c = cell.unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&c), "cost {c}");
        }
    }

    #[test]
    fn tradeoff_alpha_is_clamped() {
        let p = problem();
        let (hi, _) = PlacementPolicy::CarbonEnergyTradeoff { alpha: 5.0 }.costs(&p);
        let (one, _) = PlacementPolicy::CarbonEnergyTradeoff { alpha: 1.0 }.costs(&p);
        assert_eq!(hi, one);
    }

    #[test]
    fn policy_names_are_distinct() {
        let names: std::collections::HashSet<String> = PlacementPolicy::BASELINE_SET
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(names.len(), 4);
    }
}
