//! Per-region mesoscale analyses (Figures 2–4, Table 1).

use carbonedge_datasets::{MesoscaleRegion, ZoneCatalog};
use carbonedge_grid::{CarbonTrace, HourOfYear};
use carbonedge_net::{LatencyMatrix, LatencyModel};

/// A single-hour carbon-intensity snapshot of a mesoscale region (Figure 2).
#[derive(Debug, Clone)]
pub struct RegionSnapshot {
    /// Region name.
    pub region: String,
    /// Per-zone `(name, carbon intensity)` at the snapshot hour.
    pub intensities: Vec<(String, f64)>,
    /// Ratio between the highest and lowest intensity in the snapshot.
    pub variation_factor: f64,
}

impl RegionSnapshot {
    /// Computes the snapshot of a region at a given hour.
    pub fn compute(
        region: &MesoscaleRegion,
        traces: &[CarbonTrace],
        hour: HourOfYear,
    ) -> RegionSnapshot {
        let intensities: Vec<(String, f64)> = region
            .zones
            .iter()
            .zip(region.members.iter())
            .map(|(zone, (name, _))| (name.clone(), traces[zone.index()].at(hour)))
            .collect();
        let max = intensities
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        let min = intensities
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min);
        RegionSnapshot {
            region: region.region.name().to_string(),
            intensities,
            variation_factor: if min > 0.0 { max / min } else { f64::INFINITY },
        }
    }

    /// The snapshot hour with the largest variation factor over the year
    /// (the paper picks an illustrative hour per region; this finds the most
    /// pronounced one deterministically).
    pub fn most_varied_hour(
        region: &MesoscaleRegion,
        traces: &[CarbonTrace],
    ) -> (HourOfYear, RegionSnapshot) {
        let mut best: Option<(HourOfYear, RegionSnapshot)> = None;
        for hour in HourOfYear::all().step_by(6) {
            let snap = Self::compute(region, traces, hour);
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| snap.variation_factor > b.variation_factor);
            if better && snap.variation_factor.is_finite() {
                best = Some((hour, snap));
            }
        }
        best.expect("year has at least one sampled hour")
    }
}

/// Year-long average carbon intensity of each zone in a region (Figure 3).
#[derive(Debug, Clone)]
pub struct RegionYearly {
    /// Region name.
    pub region: String,
    /// Per-zone `(name, yearly mean intensity)`.
    pub means: Vec<(String, f64)>,
    /// Max/min ratio of the yearly means (the factor the paper annotates:
    /// 2.7× for the West US, 10.8× for Central EU).
    pub spread: f64,
}

impl RegionYearly {
    /// Computes the yearly summary for a region.
    pub fn compute(region: &MesoscaleRegion, traces: &[CarbonTrace]) -> RegionYearly {
        let means: Vec<(String, f64)> = region
            .zones
            .iter()
            .zip(region.members.iter())
            .map(|(zone, (name, _))| (name.clone(), traces[zone.index()].mean()))
            .collect();
        let max = means
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        let min = means.iter().map(|(_, v)| *v).fold(f64::INFINITY, f64::min);
        RegionYearly {
            region: region.region.name().to_string(),
            means,
            spread: if min > 0.0 { max / min } else { f64::INFINITY },
        }
    }
}

/// Temporal profile of a region's zones: two-day hourly series and monthly
/// means (Figure 4).
#[derive(Debug, Clone)]
pub struct TemporalProfile {
    /// Region name.
    pub region: String,
    /// Per-zone hourly intensity over a two-day window `(name, 48 values)`.
    pub two_day: Vec<(String, Vec<f64>)>,
    /// Per-zone monthly mean intensity `(name, 12 values)`.
    pub monthly: Vec<(String, Vec<f64>)>,
}

impl TemporalProfile {
    /// Computes the temporal profile; `start_day` selects the two-day window
    /// (the paper uses Dec 25–27, i.e. day 358).
    pub fn compute(region: &MesoscaleRegion, traces: &[CarbonTrace], start_day: usize) -> Self {
        let start = HourOfYear::new(start_day * 24);
        let two_day = region
            .zones
            .iter()
            .zip(region.members.iter())
            .map(|(zone, (name, _))| {
                let series: Vec<f64> = (0..48)
                    .map(|k| traces[zone.index()].at(start.plus(k)))
                    .collect();
                (name.clone(), series)
            })
            .collect();
        let monthly = region
            .zones
            .iter()
            .zip(region.members.iter())
            .map(|(zone, (name, _))| {
                let series: Vec<f64> = (0..12)
                    .map(|m| traces[zone.index()].monthly_mean(m))
                    .collect();
                (name.clone(), series)
            })
            .collect();
        Self {
            region: region.region.name().to_string(),
            two_day,
            monthly,
        }
    }

    /// The largest month-to-month change seen by any zone in the region
    /// (e.g. Kingman's ~200 g seasonal swing called out in Section 3.1).
    pub fn max_monthly_swing(&self) -> f64 {
        self.monthly
            .iter()
            .map(|(_, series)| {
                let max = series.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
                max - min
            })
            .fold(0.0, f64::max)
    }
}

/// One-way latency matrix between the members of a region (Table 1).
pub fn region_latency_table(region: &MesoscaleRegion, model: &LatencyModel) -> LatencyMatrix {
    LatencyMatrix::from_model(&region.members, model)
}

/// Convenience: resolve the study regions, generate traces and return
/// everything needed by the Section-3 experiments.
pub fn standard_regions_and_traces(
    seed: u64,
) -> (ZoneCatalog, Vec<MesoscaleRegion>, Vec<CarbonTrace>) {
    let catalog = ZoneCatalog::worldwide();
    let regions = MesoscaleRegion::all(&catalog);
    let traces = catalog.generate_traces(seed);
    (catalog, regions, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbonedge_datasets::StudyRegion;

    fn setup() -> (ZoneCatalog, Vec<MesoscaleRegion>, Vec<CarbonTrace>) {
        standard_regions_and_traces(42)
    }

    #[test]
    fn snapshots_show_mesoscale_variation() {
        // Figure 2 reports 2.5x (Florida), 7.9x (West US), 2.2x (Italy) and
        // 19.5x (Central EU) for one illustrative hour; the most-varied hour
        // of our synthetic traces must reach at least 2x everywhere and be
        // largest in Central EU.
        let (_, regions, traces) = setup();
        let mut factors = std::collections::HashMap::new();
        for region in &regions {
            let (_, snap) = RegionSnapshot::most_varied_hour(region, &traces);
            assert_eq!(snap.intensities.len(), 5);
            factors.insert(region.region, snap.variation_factor);
            assert!(
                snap.variation_factor > 2.0,
                "{}: {}",
                snap.region,
                snap.variation_factor
            );
        }
        assert!(
            factors[&StudyRegion::CentralEu] > factors[&StudyRegion::Italy],
            "Central EU should vary more than Italy"
        );
    }

    #[test]
    fn yearly_spreads_match_figure3() {
        let (_, regions, traces) = setup();
        for region in &regions {
            let yearly = RegionYearly::compute(region, &traces);
            match region.region {
                StudyRegion::WestUs => {
                    assert!(
                        yearly.spread > 1.8 && yearly.spread < 4.0,
                        "West US {}",
                        yearly.spread
                    )
                }
                StudyRegion::CentralEu => {
                    assert!(
                        yearly.spread > 6.0 && yearly.spread < 18.0,
                        "Central EU {}",
                        yearly.spread
                    )
                }
                _ => assert!(yearly.spread > 1.0),
            }
        }
    }

    #[test]
    fn temporal_profile_has_expected_shape() {
        let (_, regions, traces) = setup();
        let west_us = regions
            .iter()
            .find(|r| r.region == StudyRegion::WestUs)
            .unwrap();
        let profile = TemporalProfile::compute(west_us, &traces, 358);
        assert_eq!(profile.two_day.len(), 5);
        assert_eq!(profile.monthly.len(), 5);
        assert!(profile.two_day.iter().all(|(_, s)| s.len() == 48));
        assert!(profile.monthly.iter().all(|(_, s)| s.len() == 12));
        // Section 3.1: seasonal swings on the order of 100+ g exist in the West US.
        assert!(
            profile.max_monthly_swing() > 30.0,
            "swing {}",
            profile.max_monthly_swing()
        );
    }

    #[test]
    fn latency_tables_match_table1_ranges() {
        let (_, regions, _) = setup();
        let model = LatencyModel::deterministic();
        for region in &regions {
            let table = region_latency_table(region, &model);
            assert_eq!(table.len(), 5);
            let max = table.max_off_diagonal();
            match region.region {
                // Table 1a: Florida one-way latencies peak around 7 ms.
                StudyRegion::Florida => assert!(max > 3.0 && max < 12.0, "Florida {max}"),
                // Table 1b: Central EU peaks around 16 ms (Graz–Lyon).
                StudyRegion::CentralEu => assert!(max > 5.0 && max < 20.0, "Central EU {max}"),
                _ => assert!(max > 1.0 && max < 25.0),
            }
        }
    }

    #[test]
    fn snapshot_at_fixed_hour_is_deterministic() {
        let (_, regions, traces) = setup();
        let a = RegionSnapshot::compute(&regions[0], &traces, HourOfYear(1000));
        let b = RegionSnapshot::compute(&regions[0], &traces, HourOfYear(1000));
        assert_eq!(a.intensities, b.intensities);
    }
}
