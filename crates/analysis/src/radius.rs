//! Continental-scale radius analysis (Figure 5).
//!
//! For every CDN edge site, find the site within a search radius `D` whose
//! carbon intensity is lowest, and report the relative carbon saving
//! `1 − CI_best / CI_self`; the distribution of those savings over all sites
//! (Figure 5a–c) shows how prevalent mesoscale opportunities are, and the
//! latency of reaching the chosen site (Figure 5d) shows their cost.

use crate::stats::Cdf;
use carbonedge_datasets::EdgeSiteCatalog;
use carbonedge_grid::CarbonTrace;
use carbonedge_net::LatencyModel;
use rayon::prelude::*;

/// The per-site outcome of the radius analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiusPoint {
    /// Index of the site in the catalog.
    pub site: usize,
    /// The best (largest) carbon saving available within the radius, as a
    /// fraction in `[0, 1]`.
    pub best_saving: f64,
    /// One-way latency (ms) to the site providing that saving.
    pub one_way_latency_ms: f64,
    /// Distance (km) to that site.
    pub distance_km: f64,
}

/// The radius analysis over a full edge-site catalog.
#[derive(Debug, Clone)]
pub struct RadiusAnalysis {
    /// Search radius in km.
    pub radius_km: f64,
    /// Per-site outcomes.
    pub points: Vec<RadiusPoint>,
}

impl RadiusAnalysis {
    /// Runs the analysis for one radius, using yearly-mean carbon intensity
    /// per zone (the paper computes percentage differences between
    /// locations; yearly means make the statistic stable).
    pub fn run(
        sites: &EdgeSiteCatalog,
        traces: &[CarbonTrace],
        latency: &LatencyModel,
        radius_km: f64,
    ) -> Self {
        let zone_mean: Vec<f64> = traces.iter().map(|t| t.mean()).collect();
        let records = sites.sites();
        let points: Vec<RadiusPoint> = records
            .par_iter()
            .map(|site| {
                let own = zone_mean[site.zone.index()];
                let mut best_saving = 0.0f64;
                let mut best_latency = 0.0f64;
                let mut best_distance = 0.0f64;
                for other in records {
                    if other.id == site.id {
                        continue;
                    }
                    let d = site.location.distance_km(&other.location);
                    if d > radius_km {
                        continue;
                    }
                    let other_ci = zone_mean[other.zone.index()];
                    if own <= 0.0 {
                        continue;
                    }
                    let saving = 1.0 - other_ci / own;
                    if saving > best_saving {
                        best_saving = saving;
                        best_latency = latency.one_way_ms(site.location, other.location);
                        best_distance = d;
                    }
                }
                RadiusPoint {
                    site: site.id,
                    best_saving: best_saving.max(0.0),
                    one_way_latency_ms: best_latency,
                    distance_km: best_distance,
                }
            })
            .collect();
        Self { radius_km, points }
    }

    /// CDF of the per-site best savings (in percent, 0–100), matching the
    /// x-axis of Figure 5a–c.
    pub fn saving_cdf(&self) -> Cdf {
        Cdf::new(self.points.iter().map(|p| p.best_saving * 100.0).collect())
    }

    /// Fraction of sites whose best saving is below `threshold_percent`.
    pub fn fraction_below(&self, threshold_percent: f64) -> f64 {
        self.saving_cdf().fraction_at_most(threshold_percent)
    }

    /// Fraction of sites whose best saving exceeds `threshold_percent`.
    pub fn fraction_above(&self, threshold_percent: f64) -> f64 {
        self.saving_cdf().fraction_above(threshold_percent)
    }

    /// Median one-way latency (ms) to the chosen greener site, over sites
    /// that found any saving (Figure 5d).
    pub fn median_latency_ms(&self) -> f64 {
        let latencies: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.best_saving > 0.0)
            .map(|p| p.one_way_latency_ms)
            .collect();
        Cdf::new(latencies).median()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbonedge_datasets::ZoneCatalog;

    fn setup() -> (EdgeSiteCatalog, Vec<CarbonTrace>) {
        let zones = ZoneCatalog::worldwide();
        let sites = EdgeSiteCatalog::akamai_like(&zones);
        let traces = zones.generate_traces(7);
        (sites, traces)
    }

    #[test]
    fn savings_grow_with_radius() {
        // Figure 5: the fraction of sites with >20% savings grows from 32%
        // (200 km) to 57% (500 km) to 78% (1000 km).
        let (sites, traces) = setup();
        let model = LatencyModel::deterministic();
        let r200 = RadiusAnalysis::run(&sites, &traces, &model, 200.0);
        let r500 = RadiusAnalysis::run(&sites, &traces, &model, 500.0);
        let r1000 = RadiusAnalysis::run(&sites, &traces, &model, 1000.0);
        let f = |r: &RadiusAnalysis| r.fraction_above(20.0);
        assert!(
            f(&r200) < f(&r500),
            "200km {} vs 500km {}",
            f(&r200),
            f(&r500)
        );
        assert!(
            f(&r500) < f(&r1000),
            "500km {} vs 1000km {}",
            f(&r500),
            f(&r1000)
        );
        // Broad agreement with the paper's magnitudes.
        assert!(
            f(&r200) > 0.10 && f(&r200) < 0.75,
            "200km fraction {}",
            f(&r200)
        );
        assert!(f(&r1000) > 0.50, "1000km fraction {}", f(&r1000));
    }

    #[test]
    fn large_savings_are_rarer_than_moderate_savings() {
        let (sites, traces) = setup();
        let model = LatencyModel::deterministic();
        let r500 = RadiusAnalysis::run(&sites, &traces, &model, 500.0);
        assert!(r500.fraction_above(40.0) <= r500.fraction_above(20.0));
    }

    #[test]
    fn latency_grows_with_radius() {
        // Figure 5d: median one-way latency rises from ~5 ms (200 km) to
        // ~14 ms (1000 km).
        let (sites, traces) = setup();
        let model = LatencyModel::deterministic();
        let r200 = RadiusAnalysis::run(&sites, &traces, &model, 200.0);
        let r1000 = RadiusAnalysis::run(&sites, &traces, &model, 1000.0);
        assert!(r200.median_latency_ms() < r1000.median_latency_ms());
        assert!(
            r200.median_latency_ms() < 10.0,
            "200km median {}",
            r200.median_latency_ms()
        );
        assert!(r1000.median_latency_ms() < 30.0);
    }

    #[test]
    fn chosen_sites_are_within_radius() {
        let (sites, traces) = setup();
        let model = LatencyModel::deterministic();
        let r500 = RadiusAnalysis::run(&sites, &traces, &model, 500.0);
        for p in &r500.points {
            assert!(p.distance_km <= 500.0 + 1e-9);
            assert!(p.best_saving >= 0.0 && p.best_saving <= 1.0);
        }
        assert_eq!(r500.points.len(), sites.len());
    }

    #[test]
    fn zero_radius_finds_no_savings() {
        let (sites, traces) = setup();
        let model = LatencyModel::deterministic();
        let r0 = RadiusAnalysis::run(&sites, &traces, &model, 0.0);
        // Sites in the same city are a few km apart, so nothing is reachable.
        assert!(r0.fraction_above(1.0) < 0.05);
    }
}
