#![forbid(unsafe_code)]
//! Mesoscale carbon analysis (Section 3 of the paper).
//!
//! This crate reproduces the empirical study that motivates CarbonEdge:
//!
//! * [`mesoscale`] — per-region analyses: carbon-intensity snapshots and
//!   inter-zone variation factors (Figure 2), yearly averages and spreads
//!   (Figure 3), diurnal/seasonal temporal profiles (Figure 4), and the
//!   pairwise one-way latency tables (Table 1);
//! * [`radius`] — the continental analysis across CDN edge sites: for every
//!   edge site, the best carbon saving available within a search radius, as
//!   a CDF (Figure 5), plus the latency cost of each radius;
//! * [`stats`] — small statistics helpers (CDFs, percentiles) shared by the
//!   analyses and the simulator.

pub mod mesoscale;
pub mod radius;
pub mod stats;

pub use mesoscale::{RegionSnapshot, RegionYearly, TemporalProfile};
pub use radius::{RadiusAnalysis, RadiusPoint};
pub use stats::{percentile, Cdf};
