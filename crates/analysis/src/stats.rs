//! Small statistics helpers: empirical CDFs and percentiles.

/// An empirical cumulative distribution function over a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from a sample (non-finite values are dropped).
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| v.is_finite());
        values.sort_by(f64::total_cmp);
        Self { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples less than or equal to `x`.
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|v| *v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly greater than `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_most(x)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile(&self.sorted, q * 100.0)
    }

    /// Median value.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// The sorted sample, for plotting.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evenly spaced `(value, cumulative fraction)` points for plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return vec![];
        }
        (0..n)
            .map(|k| {
                let q = k as f64 / (n - 1).max(1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }
}

/// Nearest-rank percentile of a **sorted** slice (`p` in `[0, 100]`).
/// Returns `NaN` for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fraction_at_most_counts_correctly() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 0.5);
        assert_eq!(cdf.fraction_at_most(10.0), 1.0);
        assert_eq!(cdf.fraction_above(2.0), 0.5);
    }

    #[test]
    fn median_and_quantiles() {
        let cdf = Cdf::new(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(cdf.median(), 3.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn infinity_is_dropped() {
        let cdf = Cdf::new(vec![1.0, f64::INFINITY, f64::NEG_INFINITY]);
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn empty_cdf_behaves() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_most(1.0), 0.0);
        assert!(cdf.median().is_nan());
        assert!(cdf.points(5).is_empty());
    }

    #[test]
    fn points_are_monotone() {
        let cdf = Cdf::new((0..100).map(|i| i as f64).collect());
        let pts = cdf.points(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile(&[], 50.0).is_nan());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn quantiles_are_within_sample_range(values in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                             q in 0.0f64..1.0) {
            let cdf = Cdf::new(values.clone());
            let v = cdf.quantile(q);
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min && v <= max);
        }

        #[test]
        fn fraction_at_most_is_monotone(values in proptest::collection::vec(-100.0f64..100.0, 1..50),
                                        a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let cdf = Cdf::new(values);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(cdf.fraction_at_most(lo) <= cdf.fraction_at_most(hi));
        }
    }

    #[test]
    fn nan_cdf_note() {
        // Documented behaviour: NaN and infinities are both dropped because
        // `is_finite` excludes them.
        assert!(!f64::INFINITY.is_finite());
    }
}
