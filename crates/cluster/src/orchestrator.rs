//! The edge orchestrator: commits placement decisions onto the cluster.
//!
//! In the prototype, placement decisions are executed through Sinfonia's
//! deployment sequence (Kubernetes deployment files and helm charts) and
//! the client is informed of the destination address (Section 5.1).  The
//! simulator keeps the same decision process: the orchestrator owns the
//! cluster state (sites and servers), applies placement decisions, powers
//! servers on, and reports a deployment outcome including the modeled
//! deployment delay.

use crate::server::{Server, ServerId};
use crate::site::EdgeSite;
use carbonedge_workload::{AppId, Application};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The result of deploying one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentOutcome {
    /// The application that was deployed.
    pub app: AppId,
    /// The server it landed on.
    pub server: ServerId,
    /// The site of that server.
    pub site: usize,
    /// Whether the server had to be newly powered on for this deployment.
    pub activated_server: bool,
    /// Modeled deployment initiation latency in seconds (the paper reports
    /// ~1.01 s for Sinfonia's RECIPE deployment sequence, Section 6.5).
    pub deploy_latency_s: f64,
}

/// Owns the edge cluster state and applies placement decisions.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    sites: Vec<EdgeSite>,
    /// Map from global server id to (site index, index within site).
    server_index: HashMap<ServerId, (usize, usize)>,
    /// Where each deployed application currently runs.
    placements: HashMap<AppId, ServerId>,
    /// Modeled deployment latency per application (seconds).
    pub deploy_latency_s: f64,
}

impl Orchestrator {
    /// Creates an orchestrator over a set of edge sites.
    pub fn new(sites: Vec<EdgeSite>) -> Self {
        let mut server_index = HashMap::new();
        for (si, site) in sites.iter().enumerate() {
            for (ki, server) in site.servers.iter().enumerate() {
                server_index.insert(server.spec.id, (si, ki));
            }
        }
        Self {
            sites,
            server_index,
            placements: HashMap::new(),
            deploy_latency_s: 1.01,
        }
    }

    /// The managed sites.
    pub fn sites(&self) -> &[EdgeSite] {
        &self.sites
    }

    /// Total number of servers across all sites.
    pub fn server_count(&self) -> usize {
        self.server_index.len()
    }

    /// Immutable view of a server by id.
    pub fn server(&self, id: ServerId) -> Option<&Server> {
        let (si, ki) = *self.server_index.get(&id)?;
        Some(&self.sites[si].servers[ki])
    }

    /// Iterates over all servers in id-registration order grouped by site.
    pub fn servers(&self) -> impl Iterator<Item = &Server> {
        self.sites.iter().flat_map(|s| s.servers.iter())
    }

    /// Where an application currently runs, if deployed.
    pub fn placement_of(&self, app: AppId) -> Option<ServerId> {
        self.placements.get(&app).copied()
    }

    /// Number of deployed applications.
    pub fn deployed_count(&self) -> usize {
        self.placements.len()
    }

    /// Deploys an application onto a specific server (the decision made by
    /// the placement service).  Fails if the server does not exist, cannot
    /// host the application, or the application is already deployed.
    pub fn deploy(
        &mut self,
        app: &Application,
        server: ServerId,
    ) -> Result<DeploymentOutcome, String> {
        if self.placements.contains_key(&app.id) {
            return Err(format!("application {:?} is already deployed", app.id));
        }
        let (si, ki) = *self
            .server_index
            .get(&server)
            .ok_or_else(|| format!("unknown server {server:?}"))?;
        let srv = &mut self.sites[si].servers[ki];
        let was_on = srv.power_state.is_on();
        match srv.place(app) {
            Some(_) => {
                self.placements.insert(app.id, server);
                Ok(DeploymentOutcome {
                    app: app.id,
                    server,
                    site: si,
                    activated_server: !was_on,
                    deploy_latency_s: self.deploy_latency_s,
                })
            }
            None => Err(format!(
                "server {:?} cannot host application {:?}",
                server, app.id
            )),
        }
    }

    /// Undeploys an application, releasing its resources.
    pub fn undeploy(&mut self, app: AppId) -> bool {
        let Some(server) = self.placements.remove(&app) else {
            return false;
        };
        let (si, ki) = self.server_index[&server];
        self.sites[si].servers[ki].remove(app)
    }

    /// Powers off every server that hosts no applications.  Returns the
    /// number of servers turned off.  (The paper's formulation never powers
    /// off active servers; idle consolidation between batches is allowed.)
    pub fn power_off_idle(&mut self) -> usize {
        let mut count = 0;
        for site in &mut self.sites {
            for server in &mut site.servers {
                if server.power_state.is_on() && server.hosted.is_empty() && server.power_off() {
                    count += 1;
                }
            }
        }
        count
    }

    /// Total instantaneous power draw of the cluster in watts.
    pub fn total_power_w(&self) -> f64 {
        self.sites.iter().map(|s| s.power_w()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteId;
    use carbonedge_geo::Coordinates;
    use carbonedge_grid::ZoneId;
    use carbonedge_workload::{DeviceKind, ModelKind};

    fn two_site_cluster() -> Orchestrator {
        let mut s0 = EdgeSite::new(
            SiteId(0),
            "Miami",
            Coordinates::new(25.76, -80.19),
            ZoneId(0),
        );
        s0.add_servers(DeviceKind::A2, 1, 0);
        let mut s1 = EdgeSite::new(
            SiteId(1),
            "Tampa",
            Coordinates::new(27.95, -82.45),
            ZoneId(1),
        );
        s1.add_servers(DeviceKind::Gtx1080, 1, 1);
        Orchestrator::new(vec![s0, s1])
    }

    fn app(id: usize) -> Application {
        Application::new(
            AppId(id),
            ModelKind::ResNet50,
            10.0,
            20.0,
            Coordinates::new(25.0, -80.0),
            0,
        )
    }

    #[test]
    fn deploy_places_and_tracks() {
        let mut orch = two_site_cluster();
        let a = app(0);
        let outcome = orch.deploy(&a, ServerId(1)).unwrap();
        assert_eq!(outcome.site, 1);
        assert_eq!(orch.placement_of(AppId(0)), Some(ServerId(1)));
        assert_eq!(orch.deployed_count(), 1);
        assert_eq!(orch.server(ServerId(1)).unwrap().hosted_count(), 1);
    }

    #[test]
    fn double_deploy_is_rejected() {
        let mut orch = two_site_cluster();
        let a = app(0);
        orch.deploy(&a, ServerId(0)).unwrap();
        assert!(orch.deploy(&a, ServerId(1)).is_err());
    }

    #[test]
    fn unknown_server_is_rejected() {
        let mut orch = two_site_cluster();
        assert!(orch.deploy(&app(0), ServerId(99)).is_err());
    }

    #[test]
    fn incompatible_app_is_rejected_and_state_untouched() {
        let mut orch = two_site_cluster();
        let cpu_app = Application::new(
            AppId(7),
            ModelKind::SciCpu,
            1.0,
            20.0,
            Coordinates::new(0.0, 0.0),
            0,
        );
        assert!(orch.deploy(&cpu_app, ServerId(0)).is_err());
        assert_eq!(orch.deployed_count(), 0);
        assert_eq!(orch.server(ServerId(0)).unwrap().hosted_count(), 0);
    }

    #[test]
    fn undeploy_releases() {
        let mut orch = two_site_cluster();
        orch.deploy(&app(0), ServerId(0)).unwrap();
        assert!(orch.undeploy(AppId(0)));
        assert_eq!(orch.deployed_count(), 0);
        assert_eq!(orch.server(ServerId(0)).unwrap().hosted_count(), 0);
        assert!(!orch.undeploy(AppId(0)));
    }

    #[test]
    fn power_off_idle_only_affects_empty_servers() {
        let mut orch = two_site_cluster();
        orch.deploy(&app(0), ServerId(0)).unwrap();
        let turned_off = orch.power_off_idle();
        assert_eq!(turned_off, 1);
        assert!(orch.server(ServerId(0)).unwrap().power_state.is_on());
        assert!(!orch.server(ServerId(1)).unwrap().power_state.is_on());
    }

    #[test]
    fn activation_flag_reflects_prior_power_state() {
        let mut orch = two_site_cluster();
        orch.power_off_idle();
        let outcome = orch.deploy(&app(0), ServerId(0)).unwrap();
        assert!(outcome.activated_server);
        let outcome2 = orch.deploy(&app(1), ServerId(0)).unwrap();
        assert!(!outcome2.activated_server);
    }

    #[test]
    fn total_power_reflects_active_servers() {
        let mut orch = two_site_cluster();
        let before = orch.total_power_w();
        assert!(before > 0.0);
        orch.power_off_idle();
        assert_eq!(orch.total_power_w(), 0.0);
    }

    #[test]
    fn server_count_and_iteration() {
        let orch = two_site_cluster();
        assert_eq!(orch.server_count(), 2);
        assert_eq!(orch.servers().count(), 2);
    }
}
