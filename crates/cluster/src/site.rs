//! Edge sites: a group of servers at one location in one carbon zone.

use crate::server::{Server, ServerSpec};
use carbonedge_geo::Coordinates;
use carbonedge_grid::ZoneId;
use carbonedge_workload::DeviceKind;
use serde::{Deserialize, Serialize};

/// Identifier of an edge site (data center location).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub usize);

impl SiteId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// An edge data center: a named location inside one carbon zone hosting a
/// set of servers.  In the CDN-scale experiments each Akamai location maps
/// to one `EdgeSite` (multiple data centers in the same city are merged,
/// mirroring the paper's trace-integration step).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeSite {
    /// Site identifier.
    pub id: SiteId,
    /// Human-readable name (usually the city).
    pub name: String,
    /// Geographic location.
    pub location: Coordinates,
    /// The carbon zone whose grid powers the site.
    pub zone: ZoneId,
    /// Servers installed at this site.
    pub servers: Vec<Server>,
    /// Relative population weight of the site's metro area (used by the
    /// demand/capacity skew experiments of Figure 14).
    pub population_weight: f64,
}

impl EdgeSite {
    /// Creates an empty site.
    pub fn new(id: SiteId, name: impl Into<String>, location: Coordinates, zone: ZoneId) -> Self {
        Self {
            id,
            name: name.into(),
            location,
            zone,
            servers: Vec::new(),
            population_weight: 1.0,
        }
    }

    /// Sets the population weight.
    pub fn with_population_weight(mut self, weight: f64) -> Self {
        self.population_weight = weight.max(0.0);
        self
    }

    /// Adds `count` servers of the given device type, numbered after the
    /// existing servers, using the supplied global id offset.  Returns the
    /// ids of the new servers.
    pub fn add_servers(
        &mut self,
        device: DeviceKind,
        count: usize,
        next_global_id: usize,
    ) -> Vec<usize> {
        let mut ids = Vec::with_capacity(count);
        for k in 0..count {
            let gid = next_global_id + k;
            let spec = ServerSpec::from_device(
                crate::server::ServerId(gid),
                self.id.index(),
                self.zone,
                device,
            );
            self.servers.push(Server::new_powered_on(spec));
            ids.push(gid);
        }
        ids
    }

    /// Total compute capacity across the site's servers.
    pub fn total_compute(&self) -> f64 {
        self.servers.iter().map(|s| s.spec.capacity.compute).sum()
    }

    /// Total residual compute capacity.
    pub fn available_compute(&self) -> f64 {
        self.servers.iter().map(|s| s.available.compute).sum()
    }

    /// Number of hosted applications across all servers.
    pub fn hosted_count(&self) -> usize {
        self.servers.iter().map(|s| s.hosted_count()).sum()
    }

    /// Instantaneous site power draw in watts.
    pub fn power_w(&self) -> f64 {
        self.servers.iter().map(|s| s.power_w()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbonedge_workload::{AppId, Application, ModelKind};

    fn site() -> EdgeSite {
        let mut s = EdgeSite::new(
            SiteId(0),
            "Miami",
            Coordinates::new(25.76, -80.19),
            ZoneId(3),
        );
        s.add_servers(DeviceKind::A2, 2, 0);
        s
    }

    #[test]
    fn add_servers_assigns_sequential_ids() {
        let mut s = EdgeSite::new(
            SiteId(1),
            "Tampa",
            Coordinates::new(27.95, -82.45),
            ZoneId(1),
        );
        let ids = s.add_servers(DeviceKind::Gtx1080, 3, 10);
        assert_eq!(ids, vec![10, 11, 12]);
        assert_eq!(s.servers.len(), 3);
        assert!(s.servers.iter().all(|srv| srv.spec.site == 1));
        assert!(s.servers.iter().all(|srv| srv.spec.zone == ZoneId(1)));
    }

    #[test]
    fn capacity_aggregates_over_servers() {
        let s = site();
        assert!((s.total_compute() - 2.0).abs() < 1e-12);
        assert!((s.available_compute() - 2.0).abs() < 1e-12);
        assert_eq!(s.hosted_count(), 0);
    }

    #[test]
    fn hosting_reduces_available_compute() {
        let mut s = site();
        let app = Application::new(
            AppId(0),
            ModelKind::ResNet50,
            10.0,
            20.0,
            Coordinates::new(25.0, -80.0),
            0,
        );
        assert!(s.servers[0].place(&app).is_some());
        assert!(s.available_compute() < s.total_compute());
        assert_eq!(s.hosted_count(), 1);
    }

    #[test]
    fn site_power_is_sum_of_server_power() {
        let s = site();
        let expected: f64 = s.servers.iter().map(|srv| srv.power_w()).sum();
        assert!((s.power_w() - expected).abs() < 1e-12);
        // Powered-on idle A2 servers draw their base power.
        assert!(s.power_w() >= 2.0 * DeviceKind::A2.base_power_w() - 1e-9);
    }

    #[test]
    fn population_weight_clamped_nonnegative() {
        let s = EdgeSite::new(SiteId(0), "X", Coordinates::new(0.0, 0.0), ZoneId(0))
            .with_population_weight(-5.0);
        assert_eq!(s.population_weight, 0.0);
    }
}
