//! Edge servers: specifications and mutable runtime state.

use crate::power::{PowerModel, PowerState};
use carbonedge_grid::ZoneId;
use carbonedge_workload::{AppId, Application, DeviceKind, ResourceDemand};
use serde::{Deserialize, Serialize};

/// Identifier of a server within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub usize);

impl ServerId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Static description of an edge server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// Server identifier.
    pub id: ServerId,
    /// The edge site (data center) this server belongs to.
    pub site: usize,
    /// The carbon zone whose grid powers this server.
    pub zone: ZoneId,
    /// The accelerator/CPU type installed.
    pub device: DeviceKind,
    /// Total resource capacity of the server.
    pub capacity: ResourceDemand,
    /// The server's power model.
    pub power: PowerModel,
}

impl ServerSpec {
    /// Creates a server spec with capacity and power derived from the device
    /// type: one full device of compute, the device's memory, 1 Gbps of
    /// bandwidth, and the device's base/max power (matching the testbed
    /// hardware of Section 6.1.2).
    pub fn from_device(id: ServerId, site: usize, zone: ZoneId, device: DeviceKind) -> Self {
        Self {
            id,
            site,
            zone,
            device,
            capacity: ResourceDemand::new(device.compute_slots(), device.memory_mb(), 1000.0),
            power: PowerModel::new(device.base_power_w(), device.max_power_w()),
        }
    }

    /// Overrides the capacity vector.
    pub fn with_capacity(mut self, capacity: ResourceDemand) -> Self {
        self.capacity = capacity;
        self
    }
}

/// A server with its mutable runtime state: power state, residual capacity,
/// and the applications currently hosted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    /// Static specification.
    pub spec: ServerSpec,
    /// Current power state.
    pub power_state: PowerState,
    /// Capacity still available for new applications.
    pub available: ResourceDemand,
    /// Applications currently placed on this server, with their demands.
    pub hosted: Vec<(AppId, ResourceDemand)>,
}

impl Server {
    /// Creates a powered-off server with full capacity available.
    pub fn new(spec: ServerSpec) -> Self {
        let available = spec.capacity;
        Self {
            spec,
            power_state: PowerState::Off,
            available,
            hosted: Vec::new(),
        }
    }

    /// Creates a powered-on server with full capacity available.
    pub fn new_powered_on(spec: ServerSpec) -> Self {
        let mut s = Self::new(spec);
        s.power_state = PowerState::On;
        s
    }

    /// Whether the application could be placed here right now: the device
    /// must be able to run the model and the demand must fit the residual
    /// capacity.
    pub fn can_host(&self, app: &Application) -> bool {
        match app.demand_on(self.spec.device) {
            Some(demand) => demand.fits_within(&self.available),
            None => false,
        }
    }

    /// Places an application on this server, powering it on if necessary.
    ///
    /// Returns the resource demand that was reserved, or `None` if the
    /// application cannot be hosted (incompatible device or insufficient
    /// capacity); in that case the server is left unchanged.
    pub fn place(&mut self, app: &Application) -> Option<ResourceDemand> {
        let demand = app.demand_on(self.spec.device)?;
        if !demand.fits_within(&self.available) {
            return None;
        }
        self.power_state = PowerState::On;
        self.available = self.available.minus_clamped(&demand);
        self.hosted.push((app.id, demand));
        Some(demand)
    }

    /// Removes an application, releasing its resources.  Returns true if the
    /// application was hosted here.
    pub fn remove(&mut self, app: AppId) -> bool {
        if let Some(pos) = self.hosted.iter().position(|(id, _)| *id == app) {
            let (_, demand) = self.hosted.remove(pos);
            self.available = self.available.plus(&demand);
            true
        } else {
            false
        }
    }

    /// Utilization of the server's compute dimension in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let cap = self.spec.capacity.compute;
        if cap <= 0.0 {
            return 0.0;
        }
        ((cap - self.available.compute) / cap).clamp(0.0, 1.0)
    }

    /// Number of hosted applications.
    pub fn hosted_count(&self) -> usize {
        self.hosted.len()
    }

    /// Instantaneous power draw in watts.
    pub fn power_w(&self) -> f64 {
        self.spec
            .power
            .power_w(self.power_state, self.utilization())
    }

    /// Powers the server off.  Fails (returns false) if applications are
    /// still hosted, matching the paper's power-state-consistency constraint
    /// that active servers cannot be turned off during placement.
    pub fn power_off(&mut self) -> bool {
        if !self.hosted.is_empty() {
            return false;
        }
        self.power_state = PowerState::Off;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbonedge_geo::Coordinates;
    use carbonedge_workload::ModelKind;

    fn spec() -> ServerSpec {
        ServerSpec::from_device(ServerId(0), 0, ZoneId(0), DeviceKind::A2)
    }

    fn app(id: usize, rate: f64) -> Application {
        Application::new(
            AppId(id),
            ModelKind::ResNet50,
            rate,
            20.0,
            Coordinates::new(25.0, -80.0),
            0,
        )
    }

    #[test]
    fn new_server_is_off_with_full_capacity() {
        let s = Server::new(spec());
        assert_eq!(s.power_state, PowerState::Off);
        assert_eq!(s.available, s.spec.capacity);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.power_w(), 0.0);
    }

    #[test]
    fn placing_powers_on_and_reserves_capacity() {
        let mut s = Server::new(spec());
        let a = app(1, 10.0);
        let demand = s.place(&a).unwrap();
        assert!(s.power_state.is_on());
        assert!(s.available.compute < s.spec.capacity.compute);
        assert_eq!(s.hosted_count(), 1);
        assert!(demand.compute > 0.0);
        assert!(s.power_w() >= s.spec.power.base_power_w);
    }

    #[test]
    fn incompatible_model_cannot_be_hosted() {
        let s = Server::new(spec());
        let cpu_app = Application::new(
            AppId(9),
            ModelKind::SciCpu,
            1.0,
            20.0,
            Coordinates::new(0.0, 0.0),
            0,
        );
        assert!(!s.can_host(&cpu_app));
    }

    #[test]
    fn capacity_exhaustion_rejects_placement() {
        let mut s = Server::new(spec());
        // Saturate compute: ResNet50 on A2 takes 13 ms per request, so
        // ~77 rps saturates a device.  Place apps until one fails.
        let mut placed = 0;
        for i in 0..100 {
            if s.place(&app(i, 20.0)).is_some() {
                placed += 1;
            } else {
                break;
            }
        }
        assert!((1..100).contains(&placed), "placed {placed}");
        assert!(!s.can_host(&app(999, 20.0)));
    }

    #[test]
    fn remove_releases_capacity() {
        let mut s = Server::new(spec());
        let a = app(1, 10.0);
        s.place(&a).unwrap();
        let before = s.available;
        assert!(s.remove(AppId(1)));
        assert!(s.available.compute > before.compute);
        assert!((s.available.compute - s.spec.capacity.compute).abs() < 1e-9);
        assert!(!s.remove(AppId(1)));
    }

    #[test]
    fn power_off_requires_empty_server() {
        let mut s = Server::new_powered_on(spec());
        let a = app(1, 10.0);
        s.place(&a).unwrap();
        assert!(!s.power_off());
        s.remove(AppId(1));
        assert!(s.power_off());
        assert_eq!(s.power_state, PowerState::Off);
    }

    #[test]
    fn utilization_tracks_load() {
        let mut s = Server::new(spec());
        assert_eq!(s.utilization(), 0.0);
        s.place(&app(1, 30.0)).unwrap();
        let u1 = s.utilization();
        s.place(&app(2, 30.0)).unwrap();
        let u2 = s.utilization();
        assert!(u2 > u1 && u2 <= 1.0);
    }

    #[test]
    fn spec_from_device_uses_device_characteristics() {
        let s = ServerSpec::from_device(ServerId(3), 1, ZoneId(2), DeviceKind::Gtx1080);
        assert_eq!(s.capacity.memory_mb, DeviceKind::Gtx1080.memory_mb());
        assert_eq!(s.power.base_power_w, DeviceKind::Gtx1080.base_power_w());
        assert_eq!(s.power.max_power_w, DeviceKind::Gtx1080.max_power_w());
        assert_eq!(s.site, 1);
        assert_eq!(s.zone, ZoneId(2));
    }

    #[test]
    fn with_capacity_overrides() {
        let s = spec().with_capacity(ResourceDemand::new(4.0, 1.0, 1.0));
        assert_eq!(s.capacity.compute, 4.0);
    }
}
