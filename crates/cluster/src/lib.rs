#![forbid(unsafe_code)]
//! Edge data-center substrate for CarbonEdge.
//!
//! The paper's prototype runs on Sinfonia, a Kubernetes-based orchestrator,
//! with Prometheus/RAPL/DCGM telemetry (Section 5.1), and its large-scale
//! evaluation uses a simulator that "represents the components of Sinfonia
//! and follows the same decision process and metrics" (Section 5.2).  This
//! crate is that substrate: edge servers and sites with capacities and power
//! models, power-state management, an orchestrator that commits placement
//! decisions, and a telemetry service that accounts energy and carbon.

pub mod orchestrator;
pub mod power;
pub mod server;
pub mod site;
pub mod telemetry;

pub use orchestrator::{DeploymentOutcome, Orchestrator};
pub use power::{PowerModel, PowerState};
pub use server::{Server, ServerId, ServerSpec};
pub use site::{EdgeSite, SiteId};
pub use telemetry::{CarbonAccount, Telemetry};
