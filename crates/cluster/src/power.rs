//! Server power states and power models.

use serde::{Deserialize, Serialize};

/// Power state of an edge server (the `y_j` decision of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerState {
    /// Server is powered on and can host applications.
    On,
    /// Server is powered off; it consumes no power and hosts nothing.
    Off,
}

impl PowerState {
    /// Whether the server is on.
    pub fn is_on(&self) -> bool {
        matches!(self, PowerState::On)
    }

    /// As a 0/1 indicator (matching the MILP variable `y_j`).
    pub fn as_indicator(&self) -> f64 {
        if self.is_on() {
            1.0
        } else {
            0.0
        }
    }
}

/// A linear power model: `P(u) = base + (max - base) * u` for utilization
/// `u ∈ [0, 1]` while powered on, and 0 while powered off.
///
/// The paper's formulation separates the *base power* `B_j` (paid whenever a
/// server is activated) from the per-application energy `E_ij`; this model
/// provides both pieces, and the dynamic part is also used by the telemetry
/// service when measuring application energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle power draw when on, in watts (B_j when expressed per hour).
    pub base_power_w: f64,
    /// Power draw at 100% utilization, in watts.
    pub max_power_w: f64,
}

impl PowerModel {
    /// Creates a power model; `max_power_w` is clamped to at least
    /// `base_power_w`.
    pub fn new(base_power_w: f64, max_power_w: f64) -> Self {
        Self {
            base_power_w: base_power_w.max(0.0),
            max_power_w: max_power_w.max(base_power_w.max(0.0)),
        }
    }

    /// Instantaneous power draw at a given utilization (clamped to [0, 1]),
    /// for a given power state.
    pub fn power_w(&self, state: PowerState, utilization: f64) -> f64 {
        if !state.is_on() {
            return 0.0;
        }
        let u = utilization.clamp(0.0, 1.0);
        self.base_power_w + (self.max_power_w - self.base_power_w) * u
    }

    /// Energy in joules consumed over `hours` at constant utilization.
    pub fn energy_j(&self, state: PowerState, utilization: f64, hours: f64) -> f64 {
        self.power_w(state, utilization) * hours.max(0.0) * 3600.0
    }

    /// Base (idle) energy in joules over `hours` while powered on.
    pub fn base_energy_j(&self, hours: f64) -> f64 {
        self.base_power_w * hours.max(0.0) * 3600.0
    }

    /// The power-proportionality ratio `base/max`; 0 is perfectly
    /// proportional, 1 means power is constant regardless of load.
    pub fn proportionality(&self) -> f64 {
        if self.max_power_w <= 0.0 {
            return 1.0;
        }
        self.base_power_w / self.max_power_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn off_server_draws_nothing() {
        let m = PowerModel::new(50.0, 200.0);
        assert_eq!(m.power_w(PowerState::Off, 0.8), 0.0);
        assert_eq!(m.energy_j(PowerState::Off, 0.8, 5.0), 0.0);
    }

    #[test]
    fn idle_power_is_base() {
        let m = PowerModel::new(50.0, 200.0);
        assert_eq!(m.power_w(PowerState::On, 0.0), 50.0);
    }

    #[test]
    fn full_power_is_max() {
        let m = PowerModel::new(50.0, 200.0);
        assert_eq!(m.power_w(PowerState::On, 1.0), 200.0);
    }

    #[test]
    fn utilization_is_clamped() {
        let m = PowerModel::new(50.0, 200.0);
        assert_eq!(m.power_w(PowerState::On, 2.0), 200.0);
        assert_eq!(m.power_w(PowerState::On, -1.0), 50.0);
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = PowerModel::new(100.0, 100.0);
        // 100 W for 1 hour = 360 kJ.
        assert!((m.energy_j(PowerState::On, 0.5, 1.0) - 360_000.0).abs() < 1e-6);
        assert_eq!(m.energy_j(PowerState::On, 0.5, -1.0), 0.0);
    }

    #[test]
    fn max_clamped_to_base() {
        let m = PowerModel::new(100.0, 50.0);
        assert_eq!(m.max_power_w, 100.0);
    }

    #[test]
    fn proportionality_ratio() {
        assert!((PowerModel::new(50.0, 200.0).proportionality() - 0.25).abs() < 1e-12);
        assert_eq!(PowerModel::new(0.0, 0.0).proportionality(), 1.0);
    }

    #[test]
    fn power_state_indicator() {
        assert_eq!(PowerState::On.as_indicator(), 1.0);
        assert_eq!(PowerState::Off.as_indicator(), 0.0);
        assert!(PowerState::On.is_on());
        assert!(!PowerState::Off.is_on());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn power_is_monotone_in_utilization(base in 0.0f64..200.0, span in 0.0f64..300.0,
                                            u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
            let m = PowerModel::new(base, base + span);
            let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
            prop_assert!(m.power_w(PowerState::On, lo) <= m.power_w(PowerState::On, hi) + 1e-9);
        }

        #[test]
        fn power_bounded_by_base_and_max(base in 0.0f64..200.0, span in 0.0f64..300.0, u in -1.0f64..2.0) {
            let m = PowerModel::new(base, base + span);
            let p = m.power_w(PowerState::On, u);
            prop_assert!(p >= m.base_power_w - 1e-9);
            prop_assert!(p <= m.max_power_w + 1e-9);
        }
    }
}
