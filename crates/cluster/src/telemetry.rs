//! Telemetry: energy and carbon accounting.
//!
//! The prototype's telemetry service measures server power (RAPL/DCGM),
//! tracks carbon intensity, and derives carbon emissions from energy usage
//! and the intensity of the selected edge sites, accounting for base power
//! and per-application energy (Section 5.1).  This module is the simulation
//! equivalent: it accumulates per-server and per-application energy and
//! carbon over time.

use crate::server::{Server, ServerId};
use carbonedge_grid::{CarbonIntensityService, HourOfYear};
use carbonedge_workload::AppId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Accumulated energy and carbon for one accounting entity.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CarbonAccount {
    /// Total energy in joules.
    pub energy_j: f64,
    /// Total carbon emissions in grams of CO2-equivalent.
    pub carbon_g: f64,
}

impl CarbonAccount {
    /// Adds an energy amount at a given carbon intensity (g·CO2eq/kWh).
    pub fn add(&mut self, energy_j: f64, carbon_intensity: f64) {
        let energy_kwh = energy_j / 3.6e6;
        self.energy_j += energy_j;
        self.carbon_g += energy_kwh * carbon_intensity;
    }

    /// Merges another account into this one.
    pub fn merge(&mut self, other: &CarbonAccount) {
        self.energy_j += other.energy_j;
        self.carbon_g += other.carbon_g;
    }

    /// Energy in kWh.
    pub fn energy_kwh(&self) -> f64 {
        self.energy_j / 3.6e6
    }
}

/// Accumulates energy and carbon per server and per application.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    per_server: HashMap<ServerId, CarbonAccount>,
    per_app: HashMap<AppId, CarbonAccount>,
    total: CarbonAccount,
}

impl Telemetry {
    /// Creates an empty telemetry store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one epoch (of `hours` length) of operation for a server: its
    /// base energy is attributed to the server, and each hosted
    /// application's share of the dynamic energy is attributed to the
    /// application.  Carbon is computed from the server's zone intensity at
    /// `now`.
    pub fn record_epoch(
        &mut self,
        server: &Server,
        app_energy_j: &[(AppId, f64)],
        carbon: &CarbonIntensityService,
        now: HourOfYear,
        hours: f64,
    ) {
        let intensity = carbon.current(server.spec.zone, now);
        if server.power_state.is_on() {
            let base = server.spec.power.base_energy_j(hours);
            self.per_server
                .entry(server.spec.id)
                .or_default()
                .add(base, intensity);
            self.total.add(base, intensity);
        }
        for (app, energy) in app_energy_j {
            self.per_app
                .entry(*app)
                .or_default()
                .add(*energy, intensity);
            self.total.add(*energy, intensity);
        }
    }

    /// Records an arbitrary energy amount against an application at a given
    /// carbon intensity (used by the simulator's fast path).
    pub fn record_app_energy(&mut self, app: AppId, energy_j: f64, intensity: f64) {
        self.per_app
            .entry(app)
            .or_default()
            .add(energy_j, intensity);
        self.total.add(energy_j, intensity);
    }

    /// Account for one server.
    pub fn server(&self, id: ServerId) -> CarbonAccount {
        self.per_server.get(&id).copied().unwrap_or_default()
    }

    /// Account for one application.
    pub fn app(&self, id: AppId) -> CarbonAccount {
        self.per_app.get(&id).copied().unwrap_or_default()
    }

    /// Aggregate account over everything recorded.
    pub fn total(&self) -> CarbonAccount {
        self.total
    }

    /// Number of applications with recorded activity.
    pub fn tracked_apps(&self) -> usize {
        self.per_app.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerState;
    use crate::server::ServerSpec;
    use carbonedge_grid::{CarbonTrace, ZoneId};
    use carbonedge_workload::DeviceKind;

    fn carbon_service() -> CarbonIntensityService {
        CarbonIntensityService::new(vec![
            CarbonTrace::constant(360.0),
            CarbonTrace::constant(36.0),
        ])
    }

    fn server(zone: usize) -> Server {
        Server::new_powered_on(ServerSpec::from_device(
            ServerId(zone),
            0,
            ZoneId(zone),
            DeviceKind::A2,
        ))
    }

    #[test]
    fn account_add_converts_joules_to_kwh() {
        let mut acc = CarbonAccount::default();
        // 3.6 MJ = 1 kWh at 500 g/kWh -> 500 g.
        acc.add(3.6e6, 500.0);
        assert!((acc.carbon_g - 500.0).abs() < 1e-9);
        assert!((acc.energy_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn record_epoch_accounts_base_and_app_energy() {
        let mut t = Telemetry::new();
        let s = server(0);
        let carbon = carbon_service();
        t.record_epoch(&s, &[(AppId(1), 1.8e6)], &carbon, HourOfYear(0), 1.0);
        // Base: 18 W * 3600 s = 64.8 kJ at 360 g/kWh = 6.48 g.
        let server_acc = t.server(ServerId(0));
        assert!((server_acc.energy_j - 64_800.0).abs() < 1.0);
        assert!((server_acc.carbon_g - 6.48).abs() < 0.01);
        // App: 1.8 MJ = 0.5 kWh at 360 -> 180 g.
        let app_acc = t.app(AppId(1));
        assert!((app_acc.carbon_g - 180.0).abs() < 0.01);
        // Total is the sum.
        let total = t.total();
        assert!((total.carbon_g - (server_acc.carbon_g + app_acc.carbon_g)).abs() < 1e-9);
    }

    #[test]
    fn off_server_contributes_no_base_energy() {
        let mut t = Telemetry::new();
        let mut s = server(0);
        s.power_state = PowerState::Off;
        t.record_epoch(&s, &[], &carbon_service(), HourOfYear(0), 1.0);
        assert_eq!(t.total().energy_j, 0.0);
    }

    #[test]
    fn greener_zone_emits_less_for_same_energy() {
        let carbon = carbon_service();
        let mut t = Telemetry::new();
        t.record_epoch(
            &server(0),
            &[(AppId(0), 1.0e6)],
            &carbon,
            HourOfYear(0),
            0.0,
        );
        t.record_epoch(
            &server(1),
            &[(AppId(1), 1.0e6)],
            &carbon,
            HourOfYear(0),
            0.0,
        );
        assert!(t.app(AppId(1)).carbon_g < t.app(AppId(0)).carbon_g);
        assert!((t.app(AppId(0)).carbon_g / t.app(AppId(1)).carbon_g - 10.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_entities_have_empty_accounts() {
        let t = Telemetry::new();
        assert_eq!(t.server(ServerId(99)).energy_j, 0.0);
        assert_eq!(t.app(AppId(99)).carbon_g, 0.0);
        assert_eq!(t.tracked_apps(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CarbonAccount::default();
        a.add(1000.0, 100.0);
        let mut b = CarbonAccount::default();
        b.add(2000.0, 100.0);
        a.merge(&b);
        assert!((a.energy_j - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn record_app_energy_direct() {
        let mut t = Telemetry::new();
        t.record_app_energy(AppId(5), 3.6e6, 100.0);
        assert!((t.app(AppId(5)).carbon_g - 100.0).abs() < 1e-9);
        assert_eq!(t.tracked_apps(), 1);
    }
}
