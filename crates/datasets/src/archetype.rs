//! Generation-mix archetypes for assigning realistic mixes to zones.

use carbonedge_grid::{EnergyMix, EnergySource};

/// A generation-mix archetype: a named, typical composition of the grid of a
/// zone.  Zones in the catalog are tagged with an archetype plus a small
/// per-zone perturbation, which gives the catalog realistic structure
/// (hydro-heavy Pacific Northwest and Scandinavia, nuclear France, coal
/// Poland, solar/gas Southwest, …) without per-zone hand tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixArchetype {
    /// Dominated by hydro (e.g. Pacific Northwest, Norway, Switzerland).
    HydroHeavy,
    /// Dominated by nuclear (e.g. France, Ontario).
    NuclearHeavy,
    /// Dominated by coal (e.g. Poland, parts of the US Midwest).
    CoalHeavy,
    /// Dominated by natural gas (e.g. Florida, the Netherlands).
    GasHeavy,
    /// Large solar share backed by gas (e.g. US Southwest, southern Italy).
    SolarGas,
    /// Large wind share backed by gas (e.g. Texas, northern Germany, Denmark).
    WindGas,
    /// A coal + gas + some renewables blend (e.g. central Germany).
    FossilMixed,
    /// A diverse low-carbon blend of hydro, nuclear, wind and solar
    /// (e.g. Sweden, Austria).
    GreenMixed,
    /// A balanced blend of everything (typical "average" grid).
    Balanced,
}

impl MixArchetype {
    /// All archetypes.
    pub const ALL: [MixArchetype; 9] = [
        MixArchetype::HydroHeavy,
        MixArchetype::NuclearHeavy,
        MixArchetype::CoalHeavy,
        MixArchetype::GasHeavy,
        MixArchetype::SolarGas,
        MixArchetype::WindGas,
        MixArchetype::FossilMixed,
        MixArchetype::GreenMixed,
        MixArchetype::Balanced,
    ];

    /// The baseline energy mix of the archetype.
    #[rustfmt::skip]
    pub fn mix(&self) -> EnergyMix {
        use EnergySource::*;
        let shares: &[(EnergySource, f64)] = match self {
            MixArchetype::HydroHeavy => &[(Hydro, 0.78), (Wind, 0.08), (Gas, 0.08), (Nuclear, 0.06)],
            MixArchetype::NuclearHeavy => &[(Nuclear, 0.68), (Hydro, 0.12), (Gas, 0.10), (Wind, 0.06), (Solar, 0.04)],
            MixArchetype::CoalHeavy => &[(Coal, 0.68), (Gas, 0.16), (Wind, 0.10), (Solar, 0.06)],
            MixArchetype::GasHeavy => &[(Gas, 0.70), (Nuclear, 0.12), (Solar, 0.10), (Coal, 0.08)],
            MixArchetype::SolarGas => &[(Solar, 0.28), (Gas, 0.42), (Nuclear, 0.15), (Hydro, 0.07), (Coal, 0.08)],
            MixArchetype::WindGas => &[(Wind, 0.32), (Gas, 0.42), (Coal, 0.14), (Solar, 0.07), (Nuclear, 0.05)],
            MixArchetype::FossilMixed => &[(Coal, 0.32), (Gas, 0.34), (Wind, 0.16), (Solar, 0.10), (Hydro, 0.08)],
            MixArchetype::GreenMixed => &[(Hydro, 0.38), (Nuclear, 0.22), (Wind, 0.18), (Solar, 0.10), (Gas, 0.12)],
            MixArchetype::Balanced => &[(Gas, 0.30), (Coal, 0.18), (Nuclear, 0.18), (Hydro, 0.12), (Wind, 0.12), (Solar, 0.10)],
        };
        EnergyMix::new(shares).expect("archetype shares are valid")
    }

    /// The baseline carbon intensity implied by the archetype mix.
    pub fn baseline_intensity(&self) -> f64 {
        self.mix().carbon_intensity()
    }

    /// A perturbed variant of the archetype mix, where the fossil share is
    /// scaled by `(1 + delta)` (delta in [-0.5, 0.5]) and renormalized.
    /// Used to give each zone in the catalog its own personality while
    /// keeping the archetype's character.
    pub fn perturbed_mix(&self, delta: f64) -> EnergyMix {
        let delta = delta.clamp(-0.5, 0.5);
        let base = self.mix();
        let shares: Vec<(EnergySource, f64)> = base
            .iter()
            .map(|(s, share)| {
                if s.is_fossil() {
                    (s, share * (1.0 + delta))
                } else {
                    (s, share)
                }
            })
            .collect();
        EnergyMix::new(&shares).unwrap_or(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archetype_intensities_are_ordered_sensibly() {
        assert!(MixArchetype::HydroHeavy.baseline_intensity() < 80.0);
        assert!(MixArchetype::NuclearHeavy.baseline_intensity() < 100.0);
        assert!(MixArchetype::GreenMixed.baseline_intensity() < 150.0);
        assert!(MixArchetype::CoalHeavy.baseline_intensity() > 600.0);
        assert!(MixArchetype::GasHeavy.baseline_intensity() > 350.0);
        assert!(
            MixArchetype::CoalHeavy.baseline_intensity()
                > MixArchetype::FossilMixed.baseline_intensity()
        );
    }

    #[test]
    fn coal_to_hydro_ratio_supports_mesoscale_spreads() {
        // The paper reports up to 10.8x yearly spread within one region and
        // ~19.5x in an hourly snapshot; the archetype extremes must support that.
        let ratio = MixArchetype::CoalHeavy.baseline_intensity()
            / MixArchetype::HydroHeavy.baseline_intensity();
        assert!(ratio > 10.0, "ratio {ratio}");
    }

    #[test]
    fn all_archetype_mixes_are_normalized() {
        for a in MixArchetype::ALL {
            let total: f64 = a.mix().iter().map(|(_, s)| s).sum();
            assert!((total - 1.0).abs() < 1e-9, "{a:?}");
        }
    }

    #[test]
    fn perturbation_shifts_intensity_in_the_right_direction() {
        for a in MixArchetype::ALL {
            let up = a.perturbed_mix(0.3).carbon_intensity();
            let down = a.perturbed_mix(-0.3).carbon_intensity();
            let base = a.baseline_intensity();
            if a.mix().fossil_share() > 0.0 {
                assert!(up >= base - 1e-9, "{a:?}");
                assert!(down <= base + 1e-9, "{a:?}");
            }
        }
    }

    #[test]
    fn perturbation_is_clamped() {
        let wild = MixArchetype::GasHeavy.perturbed_mix(5.0);
        let clamped = MixArchetype::GasHeavy.perturbed_mix(0.5);
        assert!((wild.carbon_intensity() - clamped.carbon_intensity()).abs() < 1e-9);
    }
}
