#![forbid(unsafe_code)]
//! Calibrated synthetic datasets for CarbonEdge.
//!
//! The paper combines four proprietary data sources (Section 6.1.1): hourly
//! Electricity Maps carbon-intensity traces for 148 zones, WonderNetwork
//! ping traces between 246 cities, Akamai CDN edge-site locations, and
//! workload profiles measured on real accelerators.  This crate provides the
//! synthetic equivalents, calibrated so the headline statistics of the paper
//! (regional carbon-intensity spreads, latency ranges, site counts) are
//! reproduced:
//!
//! * [`archetype`] — generation-mix archetypes (hydro-heavy, nuclear,
//!   coal-heavy, …) used to assign realistic mixes to zones;
//! * [`zones`] — the carbon-zone catalog: 54 US zones, 45 European zones and
//!   49 rest-of-world zones (148 total, matching the paper's trace);
//! * [`regions`] — the four mesoscale study regions of Figure 2 (Florida,
//!   West US, Italy, Central EU) and the testbed deployments of Section 6.2;
//! * [`edge_sites`] — an Akamai-like catalog of 496 edge data centers across
//!   the US and Europe with population weights.

pub mod archetype;
pub mod edge_sites;
pub mod regions;
pub mod zones;

pub use archetype::MixArchetype;
pub use edge_sites::{EdgeSiteCatalog, EdgeSiteRecord};
pub use regions::{MesoscaleRegion, StudyRegion};
pub use zones::{ZoneCatalog, ZoneRecord};
