//! The CDN edge-site catalog (the Akamai-trace substitute).
//!
//! The paper's CDN-scale evaluation uses the locations of 496 Akamai edge
//! data centers across the US and Europe (Section 3.2 and Section 6.3),
//! mapped to carbon zones by coordinates and to the nearest city for
//! latency.  This module synthesizes an equivalent catalog: edge sites are
//! placed at (and around) the catalog's US/EU zone cities, with the number
//! of sites per city proportional to metro population, until the paper's
//! site count is reached.

use crate::zones::{ZoneArea, ZoneCatalog};
use carbonedge_geo::Coordinates;
use carbonedge_grid::ZoneId;

/// One edge data center in the CDN catalog.
#[derive(Debug, Clone)]
pub struct EdgeSiteRecord {
    /// Site index.
    pub id: usize,
    /// Site name (city, possibly with a suffix when a city hosts several sites).
    pub name: String,
    /// Site location.
    pub location: Coordinates,
    /// Carbon zone the site draws power from.
    pub zone: ZoneId,
    /// Whether the site is in the US or Europe.
    pub area: ZoneArea,
    /// Population weight of the site's metro (millions).
    pub population_m: f64,
}

/// The full CDN edge-site catalog.
#[derive(Debug, Clone)]
pub struct EdgeSiteCatalog {
    sites: Vec<EdgeSiteRecord>,
}

/// Number of edge sites in the paper's Akamai trace (US + Europe).
pub const PAPER_SITE_COUNT: usize = 496;

impl EdgeSiteCatalog {
    /// Builds the 496-site catalog from a zone catalog.
    ///
    /// Cities receive `1 + floor(population / 2M)` candidate sites; extra
    /// sites within the same city are offset by a few kilometres (they would
    /// be merged for latency purposes anyway, but they carry capacity).  The
    /// allocation is truncated/extended round-robin so the total is exactly
    /// [`PAPER_SITE_COUNT`].
    pub fn akamai_like(catalog: &ZoneCatalog) -> Self {
        let mut sites = Vec::new();
        let zones: Vec<_> = catalog
            .records()
            .iter()
            .filter(|r| r.area != ZoneArea::RestOfWorld)
            .collect();

        // First pass: population-proportional allocation.
        let mut allocations: Vec<usize> = zones
            .iter()
            .map(|z| 1 + (z.population_m / 2.0).floor() as usize)
            .collect();
        let mut total: usize = allocations.iter().sum();

        // Adjust to exactly PAPER_SITE_COUNT: add to (or remove from) the
        // largest cities round-robin.
        let mut order: Vec<usize> = (0..zones.len()).collect();
        order.sort_by(|a, b| zones[*b].population_m.total_cmp(&zones[*a].population_m));
        let mut cursor = 0usize;
        while total < PAPER_SITE_COUNT {
            allocations[order[cursor % order.len()]] += 1;
            total += 1;
            cursor += 1;
        }
        cursor = 0;
        while total > PAPER_SITE_COUNT {
            let idx = order[order.len() - 1 - (cursor % order.len())];
            if allocations[idx] > 1 {
                allocations[idx] -= 1;
                total -= 1;
            }
            cursor += 1;
        }

        for (zi, zone) in zones.iter().enumerate() {
            for k in 0..allocations[zi] {
                // Spread additional sites on a small ring (~10 km) around the city.
                let (dlat, dlon) = if k == 0 {
                    (0.0, 0.0)
                } else {
                    let angle = k as f64 * 2.399963; // golden angle for spread
                    (0.09 * angle.sin(), 0.09 * angle.cos())
                };
                let name = if k == 0 {
                    zone.name.clone()
                } else {
                    format!("{} #{}", zone.name, k + 1)
                };
                sites.push(EdgeSiteRecord {
                    id: sites.len(),
                    name,
                    location: Coordinates::new(zone.location.lat + dlat, zone.location.lon + dlon),
                    zone: zone.id,
                    area: zone.area,
                    population_m: zone.population_m / allocations[zi] as f64,
                });
            }
        }
        Self { sites }
    }

    /// All sites.
    pub fn sites(&self) -> &[EdgeSiteRecord] {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Sites restricted to one area.
    pub fn in_area(&self, area: ZoneArea) -> Vec<&EdgeSiteRecord> {
        self.sites.iter().filter(|s| s.area == area).collect()
    }

    /// Per-site population weights (used by the demand/capacity skew
    /// experiments of Figure 14).
    pub fn population_weights(&self, area: ZoneArea) -> Vec<f64> {
        self.in_area(area).iter().map(|s| s.population_m).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_paper_site_count() {
        let zones = ZoneCatalog::worldwide();
        let sites = EdgeSiteCatalog::akamai_like(&zones);
        assert_eq!(sites.len(), PAPER_SITE_COUNT);
    }

    #[test]
    fn both_areas_are_represented() {
        let zones = ZoneCatalog::worldwide();
        let sites = EdgeSiteCatalog::akamai_like(&zones);
        let us = sites.in_area(ZoneArea::UnitedStates).len();
        let eu = sites.in_area(ZoneArea::Europe).len();
        assert!(us > 100, "us {us}");
        assert!(eu > 100, "eu {eu}");
        assert_eq!(us + eu, PAPER_SITE_COUNT);
    }

    #[test]
    fn every_zone_hosts_at_least_one_site() {
        let zones = ZoneCatalog::worldwide();
        let sites = EdgeSiteCatalog::akamai_like(&zones);
        let zone_ids: std::collections::HashSet<_> = sites.sites().iter().map(|s| s.zone).collect();
        let us_eu_zones = zones
            .records()
            .iter()
            .filter(|r| r.area != ZoneArea::RestOfWorld)
            .count();
        assert_eq!(zone_ids.len(), us_eu_zones);
    }

    #[test]
    fn large_cities_get_more_sites() {
        let zones = ZoneCatalog::worldwide();
        let sites = EdgeSiteCatalog::akamai_like(&zones);
        let count_for = |prefix: &str| {
            sites
                .sites()
                .iter()
                .filter(|s| s.name == prefix || s.name.starts_with(&format!("{prefix} #")))
                .count()
        };
        assert!(count_for("New York") > count_for("Kingman"));
        assert!(count_for("Paris, FR") > count_for("Bern, CH"));
    }

    #[test]
    fn extra_sites_stay_near_their_city() {
        let zones = ZoneCatalog::worldwide();
        let sites = EdgeSiteCatalog::akamai_like(&zones);
        for s in sites.sites() {
            let zone = &zones.records()[s.zone.index()];
            assert!(
                s.location.distance_km(&zone.location) < 30.0,
                "{} is {} km from its zone city",
                s.name,
                s.location.distance_km(&zone.location)
            );
        }
    }

    #[test]
    fn site_ids_are_sequential() {
        let zones = ZoneCatalog::worldwide();
        let sites = EdgeSiteCatalog::akamai_like(&zones);
        for (i, s) in sites.sites().iter().enumerate() {
            assert_eq!(s.id, i);
        }
    }

    #[test]
    fn population_weights_match_area_filter() {
        let zones = ZoneCatalog::worldwide();
        let sites = EdgeSiteCatalog::akamai_like(&zones);
        let w = sites.population_weights(ZoneArea::Europe);
        assert_eq!(w.len(), sites.in_area(ZoneArea::Europe).len());
        assert!(w.iter().all(|x| *x > 0.0));
    }
}
