//! The carbon-zone catalog: 148 zones (54 US, 45 Europe, 49 rest-of-world).
//!
//! Each zone is described by a representative city, a generation-mix
//! archetype and a fossil-share perturbation.  The perturbations of the
//! zones used in the paper's figures are calibrated so the reported regional
//! statistics hold: the Central-EU region spans ~10.8× between its greenest
//! and dirtiest zone over a year, the West-US region ~2.7×, Florida's
//! greenest zone (Miami) sits ~40% below the regional mean, Poland is
//! coal-heavy (~700 g·CO2eq/kWh) while Ontario and Scandinavia are below
//! 80 g·CO2eq/kWh.

use crate::archetype::MixArchetype;
use carbonedge_geo::Coordinates;
use carbonedge_grid::{TraceGenerator, ZoneId, ZoneProfile};

/// Which macro-region a zone belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZoneArea {
    /// United States (and Ontario, which the paper groups with its US analysis).
    UnitedStates,
    /// Europe.
    Europe,
    /// Rest of the world.
    RestOfWorld,
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct ZoneRecord {
    /// Zone id (index in the catalog).
    pub id: ZoneId,
    /// Representative city / zone name.
    pub name: String,
    /// Macro-region.
    pub area: ZoneArea,
    /// Location of the representative city.
    pub location: Coordinates,
    /// Mix archetype.
    pub archetype: MixArchetype,
    /// Fossil-share perturbation applied to the archetype mix.
    pub fossil_delta: f64,
    /// Metro population in millions (used as demand/capacity weight).
    pub population_m: f64,
}

impl ZoneRecord {
    /// The zone profile (input to the trace generator).
    pub fn profile(&self) -> ZoneProfile {
        let mix = self.archetype.perturbed_mix(self.fossil_delta);
        // Southern zones get stronger solar seasonality; wind-heavy zones get
        // more stochastic wind.
        let solar_seasonality = ((55.0 - self.location.lat.abs()) / 40.0).clamp(0.2, 0.9);
        let wind_variability = match self.archetype {
            MixArchetype::WindGas => 0.6,
            MixArchetype::GreenMixed => 0.4,
            _ => 0.25,
        };
        ZoneProfile::new(self.name.clone(), self.location, mix)
            .with_solar_seasonality(solar_seasonality)
            .with_wind_variability(wind_variability)
            .with_demand_swing(0.15)
    }
}

/// The full zone catalog plus generated year-long traces.
#[derive(Debug, Clone)]
pub struct ZoneCatalog {
    records: Vec<ZoneRecord>,
}

type RawZone = (&'static str, f64, f64, MixArchetype, f64, f64);

#[rustfmt::skip]
const US_ZONES: &[RawZone] = &[
    // name, lat, lon, archetype, fossil_delta, population (millions)
    // --- Florida mesoscale region (Fig. 2a, Sec. 6.2) ---
    ("Miami", 25.7617, -80.1918, MixArchetype::SolarGas, -0.30, 6.1),
    ("Orlando", 28.5384, -81.3789, MixArchetype::GasHeavy, 0.10, 2.7),
    ("Tampa", 27.9506, -82.4572, MixArchetype::GasHeavy, 0.00, 3.2),
    ("Jacksonville", 30.3322, -81.6557, MixArchetype::GasHeavy, 0.20, 1.6),
    ("Tallahassee", 30.4383, -84.2807, MixArchetype::GasHeavy, 0.30, 0.4),
    // --- West-US mesoscale region (Fig. 2b) ---
    ("San Diego", 32.7157, -117.1611, MixArchetype::SolarGas, -0.30, 3.3),
    ("Phoenix", 33.4484, -112.0740, MixArchetype::SolarGas, 0.00, 4.9),
    ("Las Vegas", 36.1699, -115.1398, MixArchetype::SolarGas, 0.10, 2.3),
    ("Kingman", 35.1894, -114.0530, MixArchetype::Balanced, 0.00, 0.1),
    ("Flagstaff", 35.1983, -111.6513, MixArchetype::CoalHeavy, -0.10, 0.1),
    // --- Fig. 1 reference zones ---
    ("Ontario", 43.6532, -79.3832, MixArchetype::NuclearHeavy, -0.30, 6.2),
    ("California North", 37.7749, -122.4194, MixArchetype::SolarGas, -0.20, 4.7),
    ("New York", 40.7128, -74.0060, MixArchetype::Balanced, -0.20, 19.2),
    // --- Pacific Northwest (hydro) ---
    ("Seattle", 47.6062, -122.3321, MixArchetype::HydroHeavy, 0.00, 4.0),
    ("Portland", 45.5152, -122.6784, MixArchetype::HydroHeavy, 0.10, 2.5),
    ("Spokane", 47.6588, -117.4260, MixArchetype::HydroHeavy, 0.20, 0.6),
    ("Boise", 43.6150, -116.2023, MixArchetype::GreenMixed, 0.10, 0.8),
    // --- Mountain / Southwest ---
    ("Salt Lake City", 40.7608, -111.8910, MixArchetype::FossilMixed, 0.30, 1.3),
    ("Denver", 39.7392, -104.9903, MixArchetype::WindGas, 0.10, 3.0),
    ("Albuquerque", 35.0844, -106.6504, MixArchetype::SolarGas, 0.10, 0.9),
    ("El Paso", 31.7619, -106.4850, MixArchetype::SolarGas, 0.20, 0.9),
    ("Tucson", 32.2226, -110.9747, MixArchetype::SolarGas, 0.05, 1.1),
    ("Reno", 39.5296, -119.8138, MixArchetype::SolarGas, -0.10, 0.5),
    ("Sacramento", 38.5816, -121.4944, MixArchetype::SolarGas, -0.25, 2.4),
    ("Los Angeles", 34.0522, -118.2437, MixArchetype::SolarGas, -0.10, 13.2),
    ("Fresno", 36.7378, -119.7871, MixArchetype::SolarGas, -0.15, 1.0),
    // --- Texas / South ---
    ("Dallas", 32.7767, -96.7970, MixArchetype::WindGas, 0.00, 7.6),
    ("Houston", 29.7604, -95.3698, MixArchetype::GasHeavy, 0.10, 7.1),
    ("Austin", 30.2672, -97.7431, MixArchetype::WindGas, -0.10, 2.3),
    ("San Antonio", 29.4241, -98.4936, MixArchetype::WindGas, 0.05, 2.6),
    ("Oklahoma City", 35.4676, -97.5164, MixArchetype::WindGas, 0.10, 1.4),
    ("New Orleans", 29.9511, -90.0715, MixArchetype::GasHeavy, 0.15, 1.3),
    ("Memphis", 35.1495, -90.0490, MixArchetype::Balanced, 0.10, 1.3),
    ("Nashville", 36.1627, -86.7816, MixArchetype::Balanced, 0.00, 2.0),
    ("Atlanta", 33.7490, -84.3880, MixArchetype::Balanced, 0.05, 6.1),
    ("Birmingham", 33.5186, -86.8104, MixArchetype::FossilMixed, 0.10, 1.1),
    ("Charlotte", 35.2271, -80.8431, MixArchetype::NuclearHeavy, 0.20, 2.7),
    ("Raleigh", 35.7796, -78.6382, MixArchetype::NuclearHeavy, 0.25, 1.4),
    // --- Midwest ---
    ("Chicago", 41.8781, -87.6298, MixArchetype::NuclearHeavy, 0.35, 9.5),
    ("Detroit", 42.3314, -83.0458, MixArchetype::FossilMixed, 0.15, 4.3),
    ("Cleveland", 41.4993, -81.6944, MixArchetype::FossilMixed, 0.20, 2.1),
    ("Columbus", 39.9612, -82.9988, MixArchetype::FossilMixed, 0.25, 2.1),
    ("Indianapolis", 39.7684, -86.1581, MixArchetype::CoalHeavy, -0.05, 2.1),
    ("St Louis", 38.6270, -90.1994, MixArchetype::CoalHeavy, 0.00, 2.8),
    ("Kansas City", 39.0997, -94.5786, MixArchetype::WindGas, 0.15, 2.2),
    ("Minneapolis", 44.9778, -93.2650, MixArchetype::WindGas, 0.00, 3.7),
    ("Milwaukee", 43.0389, -87.9065, MixArchetype::FossilMixed, 0.10, 1.6),
    ("Des Moines", 41.5868, -93.6250, MixArchetype::WindGas, -0.20, 0.7),
    ("Omaha", 41.2565, -95.9345, MixArchetype::WindGas, 0.05, 1.0),
    // --- Northeast ---
    ("Boston", 42.3601, -71.0589, MixArchetype::GasHeavy, -0.20, 4.9),
    ("Philadelphia", 39.9526, -75.1652, MixArchetype::NuclearHeavy, 0.30, 6.2),
    ("Pittsburgh", 40.4406, -79.9959, MixArchetype::FossilMixed, 0.20, 2.3),
    ("Washington DC", 38.9072, -77.0369, MixArchetype::Balanced, -0.05, 6.3),
    ("Buffalo", 42.8864, -78.8784, MixArchetype::HydroHeavy, 0.25, 1.1),
];

#[rustfmt::skip]
const EUROPE_ZONES: &[RawZone] = &[
    // --- Central-EU mesoscale region (Fig. 2d, Sec. 6.2) ---
    ("Bern, CH", 46.9480, 7.4474, MixArchetype::HydroHeavy, -0.50, 0.4),
    ("Lyon, FR", 45.7640, 4.8357, MixArchetype::NuclearHeavy, -0.20, 2.3),
    ("Graz, AT", 47.0707, 15.4395, MixArchetype::GreenMixed, 0.10, 0.6),
    ("Milan, IT", 45.4642, 9.1900, MixArchetype::GasHeavy, 0.00, 4.3),
    ("Munich, DE", 48.1351, 11.5820, MixArchetype::FossilMixed, 0.20, 2.9),
    // --- Italy mesoscale region (Fig. 2c) ---
    ("Rome, IT", 41.9028, 12.4964, MixArchetype::GasHeavy, -0.10, 4.3),
    ("Cagliari, IT", 39.2238, 9.1217, MixArchetype::FossilMixed, 0.05, 0.4),
    ("Palermo, IT", 38.1157, 13.3615, MixArchetype::GasHeavy, 0.10, 1.2),
    ("Arezzo, IT", 43.4633, 11.8796, MixArchetype::SolarGas, -0.25, 0.3),
    // --- Fig. 1 / Fig. 13 reference zones ---
    ("Warsaw, PL", 52.2297, 21.0122, MixArchetype::CoalHeavy, 0.10, 3.1),
    ("Paris, FR", 48.8566, 2.3522, MixArchetype::NuclearHeavy, -0.10, 11.0),
    ("Oslo, NO", 59.9139, 10.7522, MixArchetype::HydroHeavy, -0.50, 1.0),
    ("Vienna, AT", 48.2082, 16.3738, MixArchetype::GreenMixed, 0.20, 1.9),
    ("Zagreb, HR", 45.8150, 15.9819, MixArchetype::Balanced, 0.00, 0.8),
    // --- Nordics / Baltics ---
    ("Stockholm, SE", 59.3293, 18.0686, MixArchetype::GreenMixed, -0.40, 1.6),
    ("Gothenburg, SE", 57.7089, 11.9746, MixArchetype::GreenMixed, -0.30, 1.0),
    ("Copenhagen, DK", 55.6761, 12.5683, MixArchetype::WindGas, -0.30, 1.3),
    ("Helsinki, FI", 60.1699, 24.9384, MixArchetype::NuclearHeavy, -0.10, 1.2),
    ("Bergen, NO", 60.3913, 5.3221, MixArchetype::HydroHeavy, -0.50, 0.4),
    ("Riga, LV", 56.9496, 24.1052, MixArchetype::Balanced, -0.10, 0.6),
    ("Vilnius, LT", 54.6872, 25.2797, MixArchetype::Balanced, 0.00, 0.5),
    ("Tallinn, EE", 59.4370, 24.7536, MixArchetype::FossilMixed, 0.15, 0.4),
    // --- Western Europe ---
    ("London, UK", 51.5074, -0.1278, MixArchetype::WindGas, -0.10, 9.0),
    ("Manchester, UK", 53.4808, -2.2426, MixArchetype::WindGas, 0.00, 2.8),
    ("Edinburgh, UK", 55.9533, -3.1883, MixArchetype::WindGas, -0.30, 0.5),
    ("Dublin, IE", 53.3498, -6.2603, MixArchetype::WindGas, 0.05, 1.4),
    ("Amsterdam, NL", 52.3676, 4.9041, MixArchetype::GasHeavy, 0.10, 2.5),
    ("Brussels, BE", 50.8503, 4.3517, MixArchetype::NuclearHeavy, 0.20, 2.1),
    ("Luxembourg, LU", 49.6116, 6.1319, MixArchetype::Balanced, -0.10, 0.6),
    ("Marseille, FR", 43.2965, 5.3698, MixArchetype::NuclearHeavy, -0.05, 1.8),
    ("Bordeaux, FR", 44.8378, -0.5792, MixArchetype::NuclearHeavy, -0.15, 1.0),
    ("Toulouse, FR", 43.6047, 1.4442, MixArchetype::NuclearHeavy, -0.10, 1.0),
    ("Madrid, ES", 40.4168, -3.7038, MixArchetype::SolarGas, -0.15, 6.7),
    ("Barcelona, ES", 41.3851, 2.1734, MixArchetype::SolarGas, -0.05, 5.6),
    ("Valencia, ES", 39.4699, -0.3763, MixArchetype::SolarGas, -0.10, 1.6),
    ("Lisbon, PT", 38.7223, -9.1393, MixArchetype::WindGas, -0.20, 2.9),
    ("Porto, PT", 41.1579, -8.6291, MixArchetype::WindGas, -0.25, 1.7),
    // --- Central / Eastern Europe ---
    ("Berlin, DE", 52.5200, 13.4050, MixArchetype::FossilMixed, 0.10, 3.8),
    ("Frankfurt, DE", 50.1109, 8.6821, MixArchetype::FossilMixed, 0.15, 2.3),
    ("Hamburg, DE", 53.5511, 9.9937, MixArchetype::WindGas, 0.10, 1.8),
    ("Prague, CZ", 50.0755, 14.4378, MixArchetype::FossilMixed, 0.30, 1.3),
    ("Krakow, PL", 50.0647, 19.9450, MixArchetype::CoalHeavy, 0.05, 0.8),
    ("Budapest, HU", 47.4979, 19.0402, MixArchetype::NuclearHeavy, 0.30, 1.8),
    ("Bratislava, SK", 48.1486, 17.1077, MixArchetype::NuclearHeavy, 0.10, 0.4),
    ("Athens, GR", 37.9838, 23.7275, MixArchetype::SolarGas, 0.15, 3.2),
];

#[rustfmt::skip]
const WORLD_ZONES: &[RawZone] = &[
    ("Tokyo, JP", 35.6762, 139.6503, MixArchetype::GasHeavy, 0.05, 37.0),
    ("Osaka, JP", 34.6937, 135.5023, MixArchetype::GasHeavy, 0.00, 19.0),
    ("Seoul, KR", 37.5665, 126.9780, MixArchetype::Balanced, 0.15, 25.0),
    ("Beijing, CN", 39.9042, 116.4074, MixArchetype::CoalHeavy, 0.00, 21.0),
    ("Shanghai, CN", 31.2304, 121.4737, MixArchetype::CoalHeavy, -0.10, 26.0),
    ("Shenzhen, CN", 22.5431, 114.0579, MixArchetype::FossilMixed, 0.10, 17.5),
    ("Hong Kong", 22.3193, 114.1694, MixArchetype::GasHeavy, 0.20, 7.5),
    ("Taipei, TW", 25.0330, 121.5654, MixArchetype::GasHeavy, 0.10, 7.0),
    ("Singapore", 1.3521, 103.8198, MixArchetype::GasHeavy, 0.15, 5.9),
    ("Mumbai, IN", 19.0760, 72.8777, MixArchetype::CoalHeavy, 0.00, 20.7),
    ("Delhi, IN", 28.7041, 77.1025, MixArchetype::CoalHeavy, 0.05, 31.0),
    ("Bangalore, IN", 12.9716, 77.5946, MixArchetype::FossilMixed, 0.10, 12.8),
    ("Chennai, IN", 13.0827, 80.2707, MixArchetype::CoalHeavy, -0.05, 11.2),
    ("Jakarta, ID", -6.2088, 106.8456, MixArchetype::CoalHeavy, 0.00, 10.6),
    ("Bangkok, TH", 13.7563, 100.5018, MixArchetype::GasHeavy, 0.10, 10.7),
    ("Manila, PH", 14.5995, 120.9842, MixArchetype::FossilMixed, 0.10, 13.9),
    ("Kuala Lumpur, MY", 3.1390, 101.6869, MixArchetype::GasHeavy, 0.05, 8.0),
    ("Ho Chi Minh City, VN", 10.8231, 106.6297, MixArchetype::FossilMixed, 0.00, 9.0),
    ("Sydney, AU", -33.8688, 151.2093, MixArchetype::FossilMixed, 0.20, 5.3),
    ("Melbourne, AU", -37.8136, 144.9631, MixArchetype::CoalHeavy, -0.05, 5.0),
    ("Brisbane, AU", -27.4698, 153.0251, MixArchetype::CoalHeavy, 0.00, 2.5),
    ("Perth, AU", -31.9505, 115.8605, MixArchetype::SolarGas, 0.10, 2.1),
    ("Auckland, NZ", -36.8485, 174.7633, MixArchetype::GreenMixed, -0.10, 1.7),
    ("Wellington, NZ", -41.2866, 174.7756, MixArchetype::GreenMixed, -0.20, 0.4),
    ("Sao Paulo, BR", -23.5505, -46.6333, MixArchetype::HydroHeavy, 0.20, 22.0),
    ("Rio de Janeiro, BR", -22.9068, -43.1729, MixArchetype::HydroHeavy, 0.15, 13.5),
    ("Brasilia, BR", -15.8267, -47.9218, MixArchetype::HydroHeavy, 0.10, 4.8),
    ("Buenos Aires, AR", -34.6037, -58.3816, MixArchetype::GasHeavy, 0.00, 15.2),
    ("Santiago, CL", -33.4489, -70.6693, MixArchetype::SolarGas, -0.05, 6.8),
    ("Lima, PE", -12.0464, -77.0428, MixArchetype::HydroHeavy, 0.25, 10.7),
    ("Bogota, CO", 4.7110, -74.0721, MixArchetype::HydroHeavy, 0.10, 10.9),
    ("Mexico City, MX", 19.4326, -99.1332, MixArchetype::GasHeavy, 0.10, 21.8),
    ("Monterrey, MX", 25.6866, -100.3161, MixArchetype::GasHeavy, 0.15, 5.3),
    ("Guadalajara, MX", 20.6597, -103.3496, MixArchetype::GasHeavy, 0.05, 5.3),
    ("Johannesburg, ZA", -26.2041, 28.0473, MixArchetype::CoalHeavy, 0.10, 9.6),
    ("Cape Town, ZA", -33.9249, 18.4241, MixArchetype::CoalHeavy, 0.00, 4.6),
    ("Cairo, EG", 30.0444, 31.2357, MixArchetype::GasHeavy, 0.10, 21.3),
    ("Lagos, NG", 6.5244, 3.3792, MixArchetype::GasHeavy, 0.20, 15.4),
    ("Nairobi, KE", -1.2921, 36.8219, MixArchetype::GreenMixed, 0.00, 4.7),
    ("Casablanca, MA", 33.5731, -7.5898, MixArchetype::FossilMixed, 0.05, 3.7),
    ("Istanbul, TR", 41.0082, 28.9784, MixArchetype::FossilMixed, 0.05, 15.5),
    ("Tel Aviv, IL", 32.0853, 34.7818, MixArchetype::GasHeavy, 0.05, 4.0),
    ("Dubai, AE", 25.2048, 55.2708, MixArchetype::GasHeavy, 0.10, 3.5),
    ("Riyadh, SA", 24.7136, 46.6753, MixArchetype::GasHeavy, 0.20, 7.7),
    ("Doha, QA", 25.2854, 51.5310, MixArchetype::GasHeavy, 0.15, 2.4),
    ("Montreal, CA", 45.5017, -73.5673, MixArchetype::HydroHeavy, -0.40, 4.3),
    ("Vancouver, CA", 49.2827, -123.1207, MixArchetype::HydroHeavy, -0.30, 2.6),
    ("Calgary, CA", 51.0447, -114.0719, MixArchetype::GasHeavy, 0.20, 1.6),
    ("Winnipeg, CA", 49.8951, -97.1384, MixArchetype::HydroHeavy, -0.20, 0.8),
];

impl ZoneCatalog {
    /// Builds the full 148-zone catalog.
    pub fn worldwide() -> Self {
        let mut records = Vec::new();
        let push = |raw: &[RawZone], area: ZoneArea, records: &mut Vec<ZoneRecord>| {
            for (name, lat, lon, archetype, delta, pop) in raw {
                records.push(ZoneRecord {
                    id: ZoneId(records.len()),
                    name: (*name).to_string(),
                    area,
                    location: Coordinates::new(*lat, *lon),
                    archetype: *archetype,
                    fossil_delta: *delta,
                    population_m: *pop,
                });
            }
        };
        push(US_ZONES, ZoneArea::UnitedStates, &mut records);
        push(EUROPE_ZONES, ZoneArea::Europe, &mut records);
        push(WORLD_ZONES, ZoneArea::RestOfWorld, &mut records);
        Self { records }
    }

    /// Builds a catalog restricted to US and European zones (the paper's
    /// CDN-scale evaluation scope).
    pub fn us_and_europe() -> Self {
        let all = Self::worldwide();
        let records: Vec<ZoneRecord> = all
            .records
            .into_iter()
            .filter(|r| r.area != ZoneArea::RestOfWorld)
            .enumerate()
            .map(|(i, mut r)| {
                r.id = ZoneId(i);
                r
            })
            .collect();
        Self { records }
    }

    /// All records.
    pub fn records(&self) -> &[ZoneRecord] {
        &self.records
    }

    /// Number of zones.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a zone by name.
    pub fn by_name(&self, name: &str) -> Option<&ZoneRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Zone id by name.
    pub fn id_of(&self, name: &str) -> Option<ZoneId> {
        self.by_name(name).map(|r| r.id)
    }

    /// Records restricted to an area.
    pub fn in_area(&self, area: ZoneArea) -> Vec<&ZoneRecord> {
        self.records.iter().filter(|r| r.area == area).collect()
    }

    /// Zone profiles in id order (input to the trace generator).
    pub fn profiles(&self) -> Vec<ZoneProfile> {
        self.records.iter().map(|r| r.profile()).collect()
    }

    /// Generates the year-long traces for every zone with the given seed.
    pub fn generate_traces(&self, seed: u64) -> Vec<carbonedge_grid::CarbonTrace> {
        TraceGenerator::new(seed).generate_all(&self.profiles())
    }

    /// The zone nearest to a coordinate (by great-circle distance).
    pub fn nearest_zone(&self, location: Coordinates) -> Option<&ZoneRecord> {
        self.records.iter().min_by(|a, b| {
            a.location
                .distance_km(&location)
                .total_cmp(&b.location.distance_km(&location))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_paper_zone_counts() {
        let cat = ZoneCatalog::worldwide();
        assert_eq!(cat.len(), 148, "total zones");
        assert_eq!(cat.in_area(ZoneArea::UnitedStates).len(), 54);
        assert_eq!(cat.in_area(ZoneArea::Europe).len(), 45);
        assert_eq!(cat.in_area(ZoneArea::RestOfWorld).len(), 49);
    }

    #[test]
    fn us_and_europe_catalog_excludes_world() {
        let cat = ZoneCatalog::us_and_europe();
        assert_eq!(cat.len(), 99);
        // Ids are re-indexed contiguously.
        for (i, r) in cat.records().iter().enumerate() {
            assert_eq!(r.id.index(), i);
        }
    }

    #[test]
    fn zone_names_are_unique() {
        let cat = ZoneCatalog::worldwide();
        let mut names: Vec<&str> = cat.records().iter().map(|r| r.name.as_str()).collect();
        let count = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), count);
    }

    #[test]
    fn study_zones_exist() {
        let cat = ZoneCatalog::worldwide();
        for name in [
            "Miami",
            "Orlando",
            "Tampa",
            "Jacksonville",
            "Tallahassee",
            "San Diego",
            "Phoenix",
            "Las Vegas",
            "Kingman",
            "Flagstaff",
            "Bern, CH",
            "Lyon, FR",
            "Graz, AT",
            "Milan, IT",
            "Munich, DE",
            "Rome, IT",
            "Cagliari, IT",
            "Palermo, IT",
            "Arezzo, IT",
            "Ontario",
            "Warsaw, PL",
            "Paris, FR",
            "Oslo, NO",
            "Vienna, AT",
            "Zagreb, HR",
        ] {
            assert!(cat.by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn poland_is_coal_heavy_and_ontario_is_clean() {
        let cat = ZoneCatalog::worldwide();
        let poland = cat
            .by_name("Warsaw, PL")
            .unwrap()
            .profile()
            .baseline_intensity();
        let ontario = cat
            .by_name("Ontario")
            .unwrap()
            .profile()
            .baseline_intensity();
        assert!(poland > 600.0, "Poland {poland}");
        assert!(ontario < 80.0, "Ontario {ontario}");
    }

    #[test]
    fn central_eu_yearly_spread_matches_paper() {
        // Figure 3b: ~10.8x between max and min yearly average in Central EU.
        let cat = ZoneCatalog::worldwide();
        let names = [
            "Bern, CH",
            "Lyon, FR",
            "Graz, AT",
            "Milan, IT",
            "Munich, DE",
        ];
        let intensities: Vec<f64> = names
            .iter()
            .map(|n| cat.by_name(n).unwrap().profile().baseline_intensity())
            .collect();
        let max = intensities.iter().cloned().fold(0.0, f64::max);
        let min = intensities.iter().cloned().fold(f64::INFINITY, f64::min);
        let ratio = max / min;
        assert!(ratio > 7.0 && ratio < 16.0, "ratio {ratio}");
    }

    #[test]
    fn west_us_yearly_spread_matches_paper() {
        // Figure 3a: ~2.7x in the West US region.
        let cat = ZoneCatalog::worldwide();
        let names = ["Kingman", "Las Vegas", "Flagstaff", "Phoenix", "San Diego"];
        let intensities: Vec<f64> = names
            .iter()
            .map(|n| cat.by_name(n).unwrap().profile().baseline_intensity())
            .collect();
        let max = intensities.iter().cloned().fold(0.0, f64::max);
        let min = intensities.iter().cloned().fold(f64::INFINITY, f64::min);
        let ratio = max / min;
        assert!(ratio > 2.0 && ratio < 3.5, "ratio {ratio}");
    }

    #[test]
    fn florida_greenest_zone_sits_well_below_mean() {
        // Needed for the ~39% testbed savings of Figure 10.
        let cat = ZoneCatalog::worldwide();
        let names = ["Miami", "Orlando", "Tampa", "Jacksonville", "Tallahassee"];
        let intensities: Vec<f64> = names
            .iter()
            .map(|n| cat.by_name(n).unwrap().profile().baseline_intensity())
            .collect();
        let mean = intensities.iter().sum::<f64>() / intensities.len() as f64;
        let min = intensities.iter().cloned().fold(f64::INFINITY, f64::min);
        let saving = 1.0 - min / mean;
        assert!(saving > 0.25 && saving < 0.55, "saving {saving}");
    }

    #[test]
    fn europe_is_greener_than_us_on_average() {
        // Underpins the 67.8% (EU) vs 49.5% (US) CDN savings of Figure 11.
        let cat = ZoneCatalog::worldwide();
        let mean = |area: ZoneArea| {
            let zones = cat.in_area(area);
            zones
                .iter()
                .map(|r| r.profile().baseline_intensity())
                .sum::<f64>()
                / zones.len() as f64
        };
        assert!(mean(ZoneArea::Europe) < mean(ZoneArea::UnitedStates));
    }

    #[test]
    fn nearest_zone_lookup() {
        let cat = ZoneCatalog::worldwide();
        // A point in downtown Miami maps to the Miami zone.
        let z = cat.nearest_zone(Coordinates::new(25.77, -80.20)).unwrap();
        assert_eq!(z.name, "Miami");
    }

    #[test]
    fn traces_generate_for_all_zones() {
        let cat = ZoneCatalog::us_and_europe();
        let traces = cat.generate_traces(42);
        assert_eq!(traces.len(), cat.len());
        for t in &traces {
            assert!(t.mean() > 0.0 && t.mean() < 1000.0);
        }
    }

    #[test]
    fn populations_are_positive() {
        for r in ZoneCatalog::worldwide().records() {
            assert!(r.population_m > 0.0, "{}", r.name);
        }
    }
}
