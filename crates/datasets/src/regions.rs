//! The mesoscale study regions of the paper.
//!
//! Figure 2 analyses four mesoscale regions of five carbon zones each
//! (Florida, West US, Italy, Central EU); the regional testbed evaluation of
//! Section 6.2 deploys edge data centers in the Florida and Central-EU
//! regions.  This module names those regions and resolves them against the
//! zone catalog.

use crate::zones::ZoneCatalog;
use carbonedge_geo::{Coordinates, Region};
use carbonedge_grid::ZoneId;

/// The four mesoscale regions studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StudyRegion {
    /// Five Florida cities (Fig. 2a).
    Florida,
    /// Five cities in the western US (Fig. 2b).
    WestUs,
    /// Five Italian cities (Fig. 2c).
    Italy,
    /// Five central-European cities (Fig. 2d).
    CentralEu,
}

impl StudyRegion {
    /// All study regions.
    pub const ALL: [StudyRegion; 4] = [
        StudyRegion::Florida,
        StudyRegion::WestUs,
        StudyRegion::Italy,
        StudyRegion::CentralEu,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            StudyRegion::Florida => "Florida",
            StudyRegion::WestUs => "West US",
            StudyRegion::Italy => "Italy",
            StudyRegion::CentralEu => "Central EU",
        }
    }

    /// The zone names composing the region, in the order the paper lists them.
    pub fn zone_names(&self) -> [&'static str; 5] {
        match self {
            StudyRegion::Florida => ["Jacksonville", "Miami", "Orlando", "Tampa", "Tallahassee"],
            StudyRegion::WestUs => ["Kingman", "Las Vegas", "Flagstaff", "Phoenix", "San Diego"],
            StudyRegion::Italy => [
                "Milan, IT",
                "Rome, IT",
                "Cagliari, IT",
                "Palermo, IT",
                "Arezzo, IT",
            ],
            StudyRegion::CentralEu => [
                "Bern, CH",
                "Graz, AT",
                "Lyon, FR",
                "Milan, IT",
                "Munich, DE",
            ],
        }
    }
}

/// A study region resolved against a zone catalog.
#[derive(Debug, Clone)]
pub struct MesoscaleRegion {
    /// Which study region this is.
    pub region: StudyRegion,
    /// Zone ids of the five member zones (catalog order matches
    /// [`StudyRegion::zone_names`]).
    pub zones: Vec<ZoneId>,
    /// Member names and locations.
    pub members: Vec<(String, Coordinates)>,
}

impl MesoscaleRegion {
    /// Resolves a study region against a catalog.  Panics if a member zone
    /// is missing from the catalog (a programming error in the datasets).
    pub fn resolve(region: StudyRegion, catalog: &ZoneCatalog) -> Self {
        let mut zones = Vec::with_capacity(5);
        let mut members = Vec::with_capacity(5);
        for name in region.zone_names() {
            let record = catalog
                .by_name(name)
                .unwrap_or_else(|| panic!("zone {name} missing from catalog"));
            zones.push(record.id);
            members.push((record.name.clone(), record.location));
        }
        Self {
            region,
            zones,
            members,
        }
    }

    /// All four study regions resolved against a catalog.
    pub fn all(catalog: &ZoneCatalog) -> Vec<MesoscaleRegion> {
        StudyRegion::ALL
            .iter()
            .map(|r| Self::resolve(*r, catalog))
            .collect()
    }

    /// As a geometric [`Region`] (for bounding boxes and diameters).
    pub fn as_geo_region(&self) -> Region {
        Region::new(self.region.name(), self.members.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_regions_resolve_with_five_zones() {
        let catalog = ZoneCatalog::worldwide();
        for region in MesoscaleRegion::all(&catalog) {
            assert_eq!(region.zones.len(), 5);
            assert_eq!(region.members.len(), 5);
        }
    }

    #[test]
    fn regions_are_mesoscale_in_extent() {
        // Figure 2 annotates each region with an extent around 700-1400 km.
        let catalog = ZoneCatalog::worldwide();
        for region in MesoscaleRegion::all(&catalog) {
            let geo = region.as_geo_region();
            let diameter = geo.diameter_km();
            assert!(
                diameter > 200.0 && diameter < 1600.0,
                "{} diameter {diameter}",
                region.region.name()
            );
        }
    }

    #[test]
    fn central_eu_contains_expected_cities() {
        let catalog = ZoneCatalog::worldwide();
        let region = MesoscaleRegion::resolve(StudyRegion::CentralEu, &catalog);
        let names: Vec<&str> = region.members.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"Bern, CH"));
        assert!(names.contains(&"Munich, DE"));
    }

    #[test]
    fn milan_is_shared_between_italy_and_central_eu() {
        let catalog = ZoneCatalog::worldwide();
        let italy = MesoscaleRegion::resolve(StudyRegion::Italy, &catalog);
        let central = MesoscaleRegion::resolve(StudyRegion::CentralEu, &catalog);
        let milan = catalog.id_of("Milan, IT").unwrap();
        assert!(italy.zones.contains(&milan));
        assert!(central.zones.contains(&milan));
    }

    #[test]
    fn region_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            StudyRegion::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
