//! Quickstart: place one edge application carbon-aware vs latency-aware.
//!
//! Builds a tiny two-site scenario (a fossil-heavy zone and a nearby green
//! zone), places a ResNet50 inference application with both policies, and
//! prints the carbon and latency of each decision.
//!
//! Run with `cargo run --release -p carbonedge-examples --bin quickstart`.

use carbonedge_core::prelude::*;
use carbonedge_geo::Coordinates;
use carbonedge_grid::ZoneId;
use carbonedge_net::LatencyModel;
use carbonedge_workload::{AppId, Application, DeviceKind, ModelKind};

fn main() {
    // Two single-server edge sites ~335 km apart: Munich (fossil-heavy grid)
    // and Bern (hydro-powered grid).
    let servers = vec![
        ServerSnapshot::new(
            0,
            0,
            ZoneId(0),
            DeviceKind::A2,
            Coordinates::new(48.135, 11.582),
        )
        .with_carbon_intensity(520.0),
        ServerSnapshot::new(
            1,
            1,
            ZoneId(1),
            DeviceKind::A2,
            Coordinates::new(46.948, 7.447),
        )
        .with_carbon_intensity(45.0),
    ];

    // A ResNet50 inference application serving users in Munich with a 20 ms
    // round-trip SLO.
    let app = Application::new(
        AppId(0),
        ModelKind::ResNet50,
        20.0,
        20.0,
        Coordinates::new(48.135, 11.582),
        0,
    );

    let problem = PlacementProblem::new(servers, vec![app], 1.0)
        .with_latency_model(LatencyModel::deterministic());

    println!("CarbonEdge quickstart: one application, two edge sites\n");
    for policy in [PlacementPolicy::LatencyAware, PlacementPolicy::CarbonAware] {
        let decision = IncrementalPlacer::new(policy)
            .place(&problem)
            .expect("placement is feasible");
        let target = match decision.assignment[0] {
            Some(0) => "Munich (520 g/kWh)",
            Some(1) => "Bern (45 g/kWh)",
            _ => "unplaced",
        };
        println!(
            "{:<16} -> {:<22} carbon {:>7.1} g/h   round-trip latency {:>5.1} ms",
            decision.policy, target, decision.total_carbon_g, decision.mean_latency_ms
        );
    }
    println!(
        "\nShifting the workload ~335 km cuts its operational carbon by more than 10x\n\
         while staying within the 20 ms round-trip SLO — the mesoscale opportunity\n\
         CarbonEdge exploits."
    );
}
