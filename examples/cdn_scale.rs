//! CDN-scale carbon-aware placement (Section 6.3).
//!
//! Runs the year-long CDN simulation over the Akamai-like edge-site catalog
//! for the US and Europe, and sweeps the round-trip latency limit to show
//! how placement flexibility controls the achievable savings — expressed as
//! one declarative scenario grid evaluated by the parallel sweep engine.
//!
//! Run with `cargo run --release -p carbonedge-examples --bin cdn_scale`.
//! Pass `--full` to simulate all 496 sites (slower); the default uses a
//! 100-site subset per continent.

use carbonedge_datasets::zones::ZoneArea;
use carbonedge_sweep::{SweepAxis, SweepExecutor, SweepSpec};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let spec = SweepSpec::new("cdn-scale")
        .with_areas(vec![ZoneArea::UnitedStates, ZoneArea::Europe])
        .with_latency_limits(vec![5.0, 10.0, 20.0, 30.0])
        .with_site_limit(if full { None } else { Some(100) });

    println!("CDN-scale year-long simulation (area x latency-limit grid)\n");
    // The executor never reads the clock (decision logic stays
    // timing-independent); callers that want the footer's timing stamp it.
    let started = std::time::Instant::now();
    let mut report = SweepExecutor::new()
        .run(&spec)
        .expect("cdn-scale grid is valid");
    report.wall_seconds = started.elapsed().as_secs_f64();
    print!("{}", report.render());
    eprintln!("\n{}", report.footer());

    let marginals = report.marginal_rows(SweepAxis::LatencyLimit);
    let tightest = marginals.first().expect("grid has latency rows");
    let loosest = marginals.last().expect("grid has latency rows");
    println!(
        "\nLoosening the latency SLO from {} to {} lifts mean savings from {:.1}% to {:.1}%:\n\
         a wider SLO widens the set of reachable green zones, with diminishing returns\n\
         once most workloads already reach a low-carbon zone (Figure 12 of the paper).",
        tightest.value, loosest.value, tightest.mean_saving_percent, loosest.mean_saving_percent
    );
}
