//! CDN-scale carbon-aware placement (Section 6.3).
//!
//! Runs the year-long CDN simulation over the Akamai-like edge-site catalog
//! for the US and Europe, and sweeps the round-trip latency limit to show
//! how placement flexibility controls the achievable savings.
//!
//! Run with `cargo run --release -p carbonedge-examples --bin cdn_scale`.
//! Pass `--full` to simulate all 496 sites (slower); the default uses a
//! 100-site subset per continent.

use carbonedge_datasets::zones::ZoneArea;
use carbonedge_sim::cdn::{CdnConfig, CdnSimulator};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let configure = |area: ZoneArea| {
        let c = CdnConfig::new(area);
        if full {
            c
        } else {
            c.with_site_limit(100)
        }
    };

    println!("CDN-scale year-long simulation (20 ms round-trip latency limit)\n");
    println!(
        "{:<8} {:>8} {:>12} {:>14}",
        "area", "sites", "saving %", "latency +ms"
    );
    for (area, label) in [(ZoneArea::UnitedStates, "US"), (ZoneArea::Europe, "Europe")] {
        let sim = CdnSimulator::new(configure(area));
        let (_, _, savings) = sim.compare();
        println!(
            "{:<8} {:>8} {:>12.1} {:>14.1}",
            label,
            sim.site_count(),
            savings.carbon_percent,
            savings.latency_increase_ms
        );
    }

    println!("\nEffect of the latency limit (Europe):");
    println!(
        "{:>10} {:>12} {:>14}",
        "limit ms", "saving %", "latency +ms"
    );
    for limit in [5.0, 10.0, 20.0, 30.0] {
        let sim = CdnSimulator::new(configure(ZoneArea::Europe).with_latency_limit(limit));
        let (_, _, savings) = sim.compare();
        println!(
            "{:>10.0} {:>12.1} {:>14.1}",
            limit, savings.carbon_percent, savings.latency_increase_ms
        );
    }
    println!(
        "\nLoosening the latency SLO widens the set of reachable green zones, so carbon\n\
         savings grow — with diminishing returns once most workloads already reach a\n\
         low-carbon zone (Figure 12 of the paper)."
    );
}
