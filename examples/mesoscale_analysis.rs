//! Mesoscale carbon-intensity analysis (Section 3 of the paper).
//!
//! Reproduces the motivation study: how much does grid carbon intensity vary
//! within regions spanning tens to hundreds of kilometres, and how common
//! are such opportunities across a continental CDN footprint?
//!
//! Run with `cargo run --release -p carbonedge-examples --bin mesoscale_analysis`.

use carbonedge_analysis::mesoscale::{standard_regions_and_traces, RegionSnapshot, RegionYearly};
use carbonedge_analysis::RadiusAnalysis;
use carbonedge_datasets::{EdgeSiteCatalog, ZoneCatalog};
use carbonedge_net::LatencyModel;

fn main() {
    let (_, regions, traces) = standard_regions_and_traces(42);

    println!("Per-region carbon-intensity variation (most-varied hour of the year):\n");
    for region in &regions {
        let (_, snapshot) = RegionSnapshot::most_varied_hour(region, &traces);
        let yearly = RegionYearly::compute(region, &traces);
        println!(
            "  {:<12} snapshot spread {:>5.1}x   yearly spread {:>5.1}x",
            snapshot.region, snapshot.variation_factor, yearly.spread
        );
    }

    println!("\nHow common are these opportunities across the CDN footprint?");
    let catalog = ZoneCatalog::worldwide();
    let sites = EdgeSiteCatalog::akamai_like(&catalog);
    let site_traces = catalog.generate_traces(42);
    let latency = LatencyModel::deterministic();
    println!(
        "{:>10} {:>24} {:>24} {:>20}",
        "radius", "sites with >20% saving", "sites with >40% saving", "median latency ms"
    );
    for radius in [200.0, 500.0, 1000.0] {
        let analysis = RadiusAnalysis::run(&sites, &site_traces, &latency, radius);
        println!(
            "{:>8}km {:>23.0}% {:>23.0}% {:>20.1}",
            radius,
            analysis.fraction_above(20.0) * 100.0,
            analysis.fraction_above(40.0) * 100.0,
            analysis.median_latency_ms()
        );
    }
    println!(
        "\nEven within a few hundred kilometres, a large fraction of edge sites can reach\n\
         a significantly greener zone — the observation that motivates CarbonEdge."
    );
}
