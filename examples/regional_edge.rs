//! Regional edge deployment: the paper's testbed experiment (Section 6.2).
//!
//! Emulates the five-site Florida and Central-EU edge deployments over a
//! 24-hour period, comparing the Latency-aware baseline with CarbonEdge for
//! the CPU-based Sci application and the GPU-based ResNet50 application.
//!
//! Run with `cargo run --release -p carbonedge-examples --bin regional_edge`.

use carbonedge_datasets::StudyRegion;
use carbonedge_sim::testbed::{run_testbed, TestbedConfig, TestbedWorkload};

fn main() {
    println!("Regional (mesoscale) edge deployments — 24-hour comparison\n");
    println!(
        "{:<12} {:<10} {:>18} {:>16} {:>12} {:>14}",
        "region", "workload", "Latency-aware g", "CarbonEdge g", "saving %", "latency +ms"
    );
    for region in [StudyRegion::Florida, StudyRegion::CentralEu] {
        for workload in [TestbedWorkload::SciCpu, TestbedWorkload::ResNet50] {
            let result = run_testbed(&TestbedConfig::new(region, workload));
            let baseline = result.policy("Latency-aware").unwrap().outcome;
            let carbonedge = result.policy("CarbonEdge").unwrap().outcome;
            println!(
                "{:<12} {:<10} {:>18.1} {:>16.1} {:>12.1} {:>14.1}",
                result.region,
                result.workload,
                baseline.carbon_g,
                carbonedge.carbon_g,
                result.savings.carbon_percent,
                result.savings.latency_increase_ms
            );
        }
    }

    // Show where CarbonEdge serves the Florida applications from.
    let florida = run_testbed(&TestbedConfig::new(
        StudyRegion::Florida,
        TestbedWorkload::SciCpu,
    ));
    let ce = florida.policy("CarbonEdge").unwrap();
    println!("\nFlorida / Sci under CarbonEdge — total emissions attributed to each origin zone:");
    for (zone, series) in &ce.hourly_emissions {
        println!(
            "  {:<14} {:>8.1} g over 24 h",
            zone,
            series.iter().sum::<f64>()
        );
    }
    println!(
        "\nEvery origin's workload is served from the greenest reachable zone, so the\n\
         per-origin emissions become nearly identical (Figure 8c of the paper)."
    );
}
