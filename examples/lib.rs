//! Shared helpers for the runnable CarbonEdge examples (intentionally minimal).
