//! Declarative scenario sweeps: the (policy × scenario × region × latency ×
//! workload) grids behind Figures 11–14, expressed as one `SweepSpec`.
//!
//! The example widens four axes — continent, demand/capacity scenario,
//! latency limit and workload mix — and lets the parallel executor evaluate
//! the whole grid, then prints the per-scenario savings table and the
//! marginal savings per axis.  Adding another scenario dimension is a
//! one-line change to the spec; no experiment loop needs rewriting.
//!
//! Run with `cargo run --release -p carbonedge-examples --bin sweep_grid`.
//! Pass `--jobs N` to pin the worker count (default: one per CPU).

use carbonedge_datasets::zones::ZoneArea;
use carbonedge_sim::cdn::CdnScenario;
use carbonedge_sweep::{take_jobs_flag, SweepExecutor, SweepSpec, WorkloadSpec};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = match take_jobs_flag(&mut args) {
        Ok(jobs) => jobs,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: sweep_grid [--jobs N]");
            std::process::exit(2);
        }
    };

    let spec = SweepSpec::new("four-axis-demo")
        .with_areas(vec![ZoneArea::UnitedStates, ZoneArea::Europe])
        .with_scenarios(vec![
            CdnScenario::Homogeneous,
            CdnScenario::PopulationDemand,
        ])
        .with_latency_limits(vec![10.0, 20.0])
        .with_workloads(vec![
            WorkloadSpec::resnet50_on_a2(),
            WorkloadSpec::efficientnet_on_orin(),
        ])
        .with_site_limit(Some(50));

    println!(
        "Evaluating a {}-cell grid over {} widened axes...\n",
        spec.cell_count(),
        spec.axis_count()
    );
    // The executor never reads the clock (decision logic stays
    // timing-independent); callers that want the footer's timing stamp it.
    let started = std::time::Instant::now();
    let mut report = SweepExecutor::new()
        .with_jobs(jobs)
        .run(&spec)
        .expect("demo grid is valid");
    report.wall_seconds = started.elapsed().as_secs_f64();
    print!("{}", report.render());
    eprintln!("\n{}", report.footer());
}
