//! No-op derive macros backing the offline `serde` shim.
//!
//! The shim's `Serialize` / `Deserialize` traits carry blanket
//! implementations, so the derives have nothing to generate — they only need
//! to exist so `#[derive(Serialize, Deserialize)]` (and any `#[serde(...)]`
//! helper attributes) parse.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
