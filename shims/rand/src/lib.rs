//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! The build environment has no crates-registry access, so this shim
//! implements exactly the surface the workspace uses: `rand::rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool, gen}` over
//! half-open ranges of the common numeric types.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction rand's own `SmallRng` family uses. It is deterministic for a
//! given seed, which is all the workspace requires (seeded synthetic traces,
//! seeded test scenarios). It is NOT cryptographically secure.

use std::ops::Range;

/// Stand-in for `rand::SeedableRng` (only the `seed_from_u64` entry point).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values `Rng::gen` can produce without an explicit range.
pub trait Standard: Sized {
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Types usable with `Rng::gen_range(a..b)`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                // Reinterpret the difference through the same-width unsigned
                // type (two's complement), not a sign-extending `as u64`, so
                // signed ranges wider than the type's positive max work.
                let span = range.end.wrapping_sub(range.start) as $u as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize),
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize)
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let unit = <$t as Standard>::from_bits(rng.next_u64());
                range.start + (range.end - range.start) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Object-safe core of the generator (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Stand-in for `rand::Rng`, blanket-implemented over every `RngCore`.
pub trait Rng: RngCore + Sized {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        <f64 as Standard>::from_bits(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..3.5);
            assert!((-2.5..3.5).contains(&x));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let x = rng.gen_range(2usize..7);
            assert!((2..7).contains(&x));
            seen[x - 2] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn signed_ranges_wider_than_positive_max_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_negative = false;
        let mut saw_positive = false;
        for _ in 0..10_000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x));
            saw_negative |= x < 0;
            saw_positive |= x > 0;
        }
        assert!(saw_negative && saw_positive);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
