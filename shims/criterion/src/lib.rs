//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates-registry access, so this shim
//! implements the subset of criterion's API the workspace's benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, bench_with_input, finish}`, `Bencher::iter`,
//! `BenchmarkId::from_parameter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical engine it runs each routine
//! `sample_size` times after one warm-up call and reports mean wall-clock
//! time per iteration. That keeps `cargo bench` usable for coarse
//! regressions offline; swap in real criterion via the manifest when a
//! registry is available.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Opaque-to-the-optimizer value passthrough (stand-in for
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Label for a parameterized benchmark (stand-in for
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing loop handle passed to benchmark closures (stand-in for
/// `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration of the routine, recorded by `iter`.
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call so lazy setup (allocations, page faults) does not
        // pollute the measurement.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples as f64;
    }
}

/// A named group of related benchmarks (stand-in for
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.mean_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.mean_ns);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&mut self, bench_name: &str, mean_ns: f64) {
        let (value, unit) = humanize_ns(mean_ns);
        println!("{}/{:<40} {:>10.3} {}", self.name, bench_name, value, unit);
        self.criterion.completed += 1;
    }
}

fn humanize_ns(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "us")
    } else {
        (ns, "ns")
    }
}

/// Benchmark driver (stand-in for `criterion::Criterion`).
pub struct Criterion {
    default_sample_size: usize,
    completed: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            completed: 0,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Number of benchmarks this driver has completed.
    pub fn completed(&self) -> usize {
        self.completed
    }
}

/// Stand-in for `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Stand-in for `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("smoke");
            group.sample_size(3);
            group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
            group.bench_with_input(BenchmarkId::from_parameter(8usize), &8usize, |b, n| {
                b.iter(|| (0..*n).sum::<usize>())
            });
            group.finish();
        }
        assert_eq!(c.completed(), 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(400).to_string(), "400");
        assert_eq!(BenchmarkId::new("place", 7).to_string(), "place/7");
    }
}
