//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates-registry access, so this shim
//! implements the DSL subset the workspace's property tests use:
//!
//! * `proptest! { ... }` blocks, with an optional leading
//!   `#![proptest_config(ProptestConfig::with_cases(N))]`;
//! * argument strategies written as half-open numeric ranges
//!   (`-80.0f64..80.0`, `0u64..1000`, `1usize..10`) and
//!   `proptest::collection::vec(strategy, size_range)`;
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: each test runs `cases` deterministic pseudo-random cases (seeded
//! from the test's name, so failures reproduce across runs) and panics with
//! the case number on the first failing case. `prop_assume!` skips the case
//! rather than resampling. That preserves the regression-catching value of
//! the properties while keeping the workspace self-contained offline.

use std::ops::Range;

pub use rand::rngs::StdRng;
use rand::Rng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Runner configuration (stand-in for `proptest::prelude::ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of pseudo-random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; keep the offline suite brisk.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (stand-in for `proptest::test_runner::TestCaseError`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Value generator (stand-in for `proptest::strategy::Strategy`).
///
/// Only sampling is supported — no shrinking, so `sample` replaces real
/// proptest's `new_tree`/`simplify` machinery.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size` and elements
    /// drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "vec strategy needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test seed: FNV-1a over the test's name, so each property
/// gets a distinct but stable case sequence.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Everything a `proptest!` block needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Skip the current case when its sampled inputs don't satisfy a
/// precondition. Real proptest resamples; the shim counts the case as passed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        let holds: bool = $cond;
        if !holds {
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = <$crate::StdRng as $crate::__SeedableRng>::seed_from_u64(
                        $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case),
                    );
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest property {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_size(values in crate::collection::vec(0.0f64..1.0, 1..20)) {
            prop_assert!(!values.is_empty() && values.len() < 20);
            prop_assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn assume_skips_cases(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            prop_assume!(a < b);
            prop_assert!(b - a > 0.0);
        }
    }

    #[test]
    fn seeds_differ_across_tests_and_cases() {
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("b", 0));
        assert_ne!(crate::seed_for("a", 0), crate::seed_for("a", 1));
        assert_eq!(crate::seed_for("a", 3), crate::seed_for("a", 3));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        always_fails();
    }
}
