//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates-registry access, so this shim
//! re-implements the slice of the rayon API the workspace uses.  Unlike the
//! original sequential placeholder, `par_iter()` now runs on a real scoped
//! worker pool: a `std::thread::scope` spawns one worker per CPU and the
//! workers pull the next unclaimed index from a shared atomic cursor — the
//! same work-distribution shape as `carbonedge_sweep::SweepExecutor`.
//! Results are written into per-index slots and collected **in index
//! order**, so the output is bit-identical to a sequential run for any
//! worker count or scheduling order.
//!
//! `par_iter_mut()` runs on the same scoped pool: the mutable slice is cut
//! into disjoint chunks handed out through a mutex-guarded chunk iterator,
//! so workers mutate non-overlapping elements in place — deterministic for
//! any worker count because each element is visited exactly once and the
//! results land at their own indices.  `into_par_iter()` (no call sites on
//! hot paths) remains a sequential adapter; swapping in real rayon later is
//! still a manifest-only change because the exposed method chains are a
//! strict subset of upstream rayon's.

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

/// The number of worker threads the pool uses by default — one per
/// available CPU, with single-threaded fallback when the count cannot be
/// determined.  Matches the upstream `rayon::current_num_threads` surface
/// and is the workspace's single parallelism probe: the sweep executor and
/// the bench harness call this instead of keeping their own copies of the
/// `available_parallelism` dance.
pub fn current_num_threads() -> usize {
    pool::default_threads()
}

mod pool {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Maps `f` over `items` on a scoped worker pool, returning the results
    /// in index order.  Falls back to a plain sequential loop for trivial
    /// inputs or single-CPU hosts.
    pub(crate) fn map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = threads.clamp(1, items.len().max(1));
        if workers <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let result = f(item);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every index produces a result")
            })
            .collect()
    }

    /// Runs `f` on every element of a mutable slice using the scoped worker
    /// pool.  The slice is cut into disjoint chunks; workers pull the next
    /// unclaimed chunk from a mutex-guarded iterator, so every element is
    /// mutated in place exactly once — the outcome is identical to a
    /// sequential pass for any worker count or scheduling order.
    pub(crate) fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        let workers = threads.clamp(1, items.len().max(1));
        if workers <= 1 || items.len() <= 1 {
            items.iter_mut().for_each(f);
            return;
        }
        // A few chunks per worker keeps the pool load-balanced without
        // paying a lock round-trip per element.
        let chunk_len = items.len().div_ceil(workers * 4).max(1);
        let chunks = Mutex::new(items.chunks_mut(chunk_len));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let Some(chunk) = chunks.lock().expect("chunk queue poisoned").next() else {
                        break;
                    };
                    for item in chunk {
                        f(item);
                    }
                });
            }
        });
    }

    /// One worker per available CPU.
    pub(crate) fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

pub mod iter {
    use crate::pool;

    /// A parallel iterator over `&[T]`, driven by the scoped worker pool.
    #[derive(Debug, Clone, Copy)]
    pub struct ParIter<'data, T> {
        items: &'data [T],
        threads: usize,
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        pub(crate) fn new(items: &'data [T]) -> Self {
            Self {
                items,
                threads: pool::default_threads(),
            }
        }

        /// Overrides the worker count (used by tests to exercise real
        /// multi-threaded scheduling even on small hosts).
        pub fn with_threads(mut self, threads: usize) -> Self {
            self.threads = threads.max(1);
            self
        }

        /// Maps each item through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&T) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                threads: self.threads,
                f,
            }
        }

        /// Runs `f` on every item in parallel (no ordering guarantees on
        /// execution, deterministic completion).
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&T) + Sync,
        {
            let _ = pool::map_indexed(self.items, self.threads, |item| f(item));
        }
    }

    /// The mapped form of a [`ParIter`].
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        threads: usize,
        f: F,
    }

    impl<'data, T, F, R> ParMap<'data, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        /// Evaluates the map on the worker pool and collects the results in
        /// index order, so the collection is identical to a sequential run.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            pool::map_indexed(self.items, self.threads, &self.f)
                .into_iter()
                .collect()
        }

        /// Sums the mapped results (index-ordered reduction, deterministic
        /// for floating-point outputs).
        pub fn sum<S: std::iter::Sum<R>>(self) -> S {
            pool::map_indexed(self.items, self.threads, &self.f)
                .into_iter()
                .sum()
        }
    }

    /// Parallel iteration over shared references, backed by the worker pool.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type.
        type Item: Sync + 'data;
        /// Starts a parallel iterator over the collection.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter::new(self)
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter::new(self)
        }
    }

    /// A parallel iterator over `&mut [T]`, driven by the scoped worker
    /// pool.  Elements are mutated in place, so "collection order" is the
    /// slice order by construction; determinism only requires that each
    /// element is visited exactly once, which the disjoint chunk hand-out
    /// guarantees.
    pub struct ParIterMut<'data, T> {
        items: &'data mut [T],
        threads: usize,
    }

    impl<'data, T: Send> ParIterMut<'data, T> {
        pub(crate) fn new(items: &'data mut [T]) -> Self {
            Self {
                items,
                threads: pool::default_threads(),
            }
        }

        /// Overrides the worker count (used by tests to exercise real
        /// multi-threaded scheduling even on small hosts).
        pub fn with_threads(mut self, threads: usize) -> Self {
            self.threads = threads.max(1);
            self
        }

        /// Runs `f` on every element in parallel, mutating in place.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut T) + Sync,
        {
            pool::for_each_mut(self.items, self.threads, f);
        }
    }

    /// Parallel iteration over mutable references, backed by the worker
    /// pool (the slice of upstream rayon's API the workspace uses).
    pub trait IntoParallelRefMutIterator<'data> {
        /// Element type.
        type Item: Send + 'data;
        /// Starts a parallel iterator over the collection's elements.
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut::new(self)
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut::new(self)
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`
    /// (no hot-path call sites in the workspace).
    pub trait IntoParallelIterator {
        type Iter: Iterator;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_matches_sequential() {
        let total: i32 = (1..=10).into_par_iter().sum();
        assert_eq!(total, 55);
    }

    #[test]
    fn collect_is_index_ordered_for_any_worker_count() {
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let got: Vec<usize> = items
                .par_iter()
                .with_threads(threads)
                .map(|x| x * x)
                .collect();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn workers_actually_run_every_item_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<u64> = (0..100).collect();
        let sums: Vec<u64> = items
            .par_iter()
            .with_threads(4)
            .map(|x| {
                counter.fetch_add(1, Ordering::Relaxed);
                x + 1
            })
            .collect();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(sums.iter().sum::<u64>(), (1..=100).sum::<u64>());
    }

    #[test]
    fn par_sum_and_for_each_work() {
        let items: Vec<f64> = (0..64).map(|x| x as f64).collect();
        let total: f64 = items.par_iter().with_threads(3).map(|x| x * 0.5).sum();
        assert!((total - 1008.0).abs() < 1e-12);

        let touched = AtomicUsize::new(0);
        items.par_iter().with_threads(2).for_each(|_| {
            touched.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn par_iter_mut_matches_sequential_for_any_worker_count() {
        let expected: Vec<u64> = (0..257u64).map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..257).collect();
            items
                .par_iter_mut()
                .with_threads(threads)
                .for_each(|x| *x = *x * 3 + 1);
            assert_eq!(items, expected, "threads={threads}");
        }
    }

    #[test]
    fn par_iter_mut_visits_every_element_exactly_once() {
        let counter = AtomicUsize::new(0);
        let mut items = vec![0u32; 100];
        items.par_iter_mut().with_threads(4).for_each(|x| {
            counter.fetch_add(1, Ordering::Relaxed);
            *x += 1;
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert!(items.iter().all(|x| *x == 1));
    }

    #[test]
    fn par_iter_mut_handles_empty_and_single_inputs() {
        let mut empty: Vec<u32> = vec![];
        empty.par_iter_mut().for_each(|x| *x += 1);
        assert!(empty.is_empty());
        let mut one = [41u32];
        one.par_iter_mut().with_threads(8).for_each(|x| *x += 1);
        assert_eq!(one, [42]);
    }

    #[test]
    fn empty_and_single_item_inputs_are_handled() {
        let empty: Vec<u32> = vec![];
        let out: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().with_threads(8).map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
