//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates-registry access, so `par_iter()` here
//! degrades to the ordinary sequential iterator. Every adapter the workspace
//! chains after `par_iter()` (`map`, `collect`, …) is a plain `Iterator`
//! method, so call sites compile unchanged and produce identical results —
//! just without the parallel speedup. Swapping in real rayon later is a
//! manifest-only change.

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

pub mod iter {
    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        type Iter: Iterator;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'data> {
        type Iter: Iterator;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        type Iter: Iterator;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }

    #[test]
    fn into_par_iter_matches_sequential() {
        let total: i32 = (1..=10).into_par_iter().sum();
        assert_eq!(total, 55);
    }
}
