//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to a crates registry, so this shim
//! provides the subset of `serde` the workspace actually relies on: the
//! `Serialize` / `Deserialize` trait names (with blanket implementations so
//! derive bounds are always satisfiable) and the corresponding no-op derive
//! macros re-exported under the `derive` feature.
//!
//! No wire format is implemented; the workspace only uses the derives as
//! forward-compatible annotations and never serializes through them. If real
//! serialization is needed later, replace this shim with the upstream crate —
//! the API surface used here is a strict subset of upstream serde's.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

/// Stand-in for `serde::de`, so `serde::de::DeserializeOwned` paths resolve.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
